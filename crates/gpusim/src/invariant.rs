//! Self-check hooks: the conservation laws a [`RunResult`] must satisfy.
//!
//! The engine promises a set of accounting identities — task counts close,
//! wasted-work totals equal the per-client sums they were folded from,
//! energy equals the telemetry integral, aborted clients stay silent after
//! their fault. The fuzz harness (`mpshare-fuzz`) runs every generated
//! scenario through [`RunResult::invariant_violations`]; each check returns
//! a human-readable description of the broken identity so a violation is
//! actionable without re-running the scenario under a debugger.
//!
//! The checks are pure functions of the result (plus the optional expected
//! task total only the caller knows), so tests can deliberately corrupt a
//! result and assert the matching check fires — the oracle is itself under
//! test.

use crate::engine::RunResult;
use crate::events::{Event, EventKind};
use mpshare_types::Seconds;

/// Absolute slack for time comparisons, matching the engine's
/// progress-resolution epsilon.
const TIME_EPS: f64 = 1e-9;

/// Relative slack for energy comparisons: totals are folded in the same
/// order as the per-part sums, so only serialization round-trips could
/// perturb them, and those are exact for finite doubles.
const ENERGY_REL_EPS: f64 = 1e-9;

fn energy_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= ENERGY_REL_EPS * a.abs().max(b.abs()).max(1.0)
}

impl RunResult {
    /// Checks every conservation and consistency identity the engine
    /// promises, returning one message per violated identity (empty when
    /// the result is sound). `total_tasks`, when known by the caller, is
    /// the number of tasks submitted across all client programs and closes
    /// the completed-plus-failed ledger.
    pub fn invariant_violations(&self, total_tasks: Option<usize>) -> Vec<String> {
        let mut v = Vec::new();
        self.check_finiteness(&mut v);
        self.check_task_conservation(total_tasks, &mut v);
        self.check_wasted_totals(&mut v);
        self.check_fault_consistency(&mut v);
        self.check_energy(&mut v);
        self.check_timeline(&mut v);
        self.check_events(&mut v);
        v
    }

    fn check_finiteness(&self, v: &mut Vec<String>) {
        let scalars = [
            ("makespan", self.makespan.value()),
            ("total_energy", self.total_energy.joules()),
            ("wasted_progress", self.wasted_progress.value()),
            ("wasted_energy", self.wasted_energy.joules()),
        ];
        for (name, value) in scalars {
            if !value.is_finite() || value < 0.0 {
                v.push(format!(
                    "{name} must be finite and non-negative, got {value}"
                ));
            }
        }
        for (i, c) in self.clients.iter().enumerate() {
            for (name, value) in [
                ("started", c.started.value()),
                ("finished", c.finished.value()),
                ("gpu_progress", c.gpu_progress.value()),
                ("wasted_progress", c.wasted_progress.value()),
                ("wasted_energy", c.wasted_energy.joules()),
                ("dyn_energy", c.dyn_energy.joules()),
            ] {
                if !value.is_finite() || value < 0.0 {
                    v.push(format!(
                        "client {i} ({}): {name} must be finite and non-negative, got {value}",
                        c.label
                    ));
                }
            }
        }
    }

    fn check_task_conservation(&self, total_tasks: Option<usize>, v: &mut Vec<String>) {
        let completed: usize = self.clients.iter().map(|c| c.completions.len()).sum();
        if completed != self.tasks_completed {
            v.push(format!(
                "tasks_completed is {} but per-client completions sum to {completed}",
                self.tasks_completed
            ));
        }
        if let Some(total) = total_tasks {
            if self.tasks_completed + self.tasks_failed != total {
                v.push(format!(
                    "task ledger does not close: {} completed + {} failed != {total} submitted",
                    self.tasks_completed, self.tasks_failed
                ));
            }
        }
    }

    fn check_wasted_totals(&self, v: &mut Vec<String>) {
        // Same fold order as the engine (and the MIG merge after its
        // client re-sort is a permutation — tolerate reassociation there
        // only up to the energy epsilon).
        let progress_sum: f64 = self.clients.iter().map(|c| c.wasted_progress.value()).sum();
        if !energy_close(progress_sum, self.wasted_progress.value()) {
            v.push(format!(
                "wasted_progress is {} but per-client sum is {progress_sum}",
                self.wasted_progress.value()
            ));
        }
        let energy_sum: f64 = self.clients.iter().map(|c| c.wasted_energy.joules()).sum();
        if !energy_close(energy_sum, self.wasted_energy.joules()) {
            v.push(format!(
                "wasted_energy is {} J but per-client sum is {energy_sum} J",
                self.wasted_energy.joules()
            ));
        }
        for (i, c) in self.clients.iter().enumerate() {
            if c.wasted_energy.joules() > c.dyn_energy.joules() * (1.0 + ENERGY_REL_EPS) + 1e-9 {
                v.push(format!(
                    "client {i} ({}): wasted_energy {} J exceeds its dyn_energy {} J",
                    c.label,
                    c.wasted_energy.joules(),
                    c.dyn_energy.joules()
                ));
            }
            if c.wasted_progress.value() > c.gpu_progress.value() + TIME_EPS {
                v.push(format!(
                    "client {i} ({}): wasted_progress {} exceeds its gpu_progress {}",
                    c.label,
                    c.wasted_progress.value(),
                    c.gpu_progress.value()
                ));
            }
        }
    }

    fn check_fault_consistency(&self, v: &mut Vec<String>) {
        let failed_clients = self.clients.iter().filter(|c| c.failed).count();
        if self.failures.is_empty() {
            if failed_clients > 0 {
                v.push(format!(
                    "{failed_clients} clients failed but no fault fired"
                ));
            }
            if self.tasks_failed > 0 {
                v.push(format!(
                    "tasks_failed is {} but no fault fired",
                    self.tasks_failed
                ));
            }
            if self.wasted_progress.value() > 0.0 || self.wasted_energy.joules() > 0.0 {
                v.push(format!(
                    "wasted work ({} s, {} J) without any fault firing",
                    self.wasted_progress.value(),
                    self.wasted_energy.joules()
                ));
            }
        } else {
            let victims: usize = self.failures.iter().map(|f| f.victims).sum();
            if victims != failed_clients {
                v.push(format!(
                    "fault records claim {victims} victims but {failed_clients} clients failed"
                ));
            }
            for rec in &self.failures {
                if rec.origin != Event::DEVICE && rec.origin >= self.clients.len() {
                    v.push(format!(
                        "fault record origin {} out of range ({} clients)",
                        rec.origin,
                        self.clients.len()
                    ));
                }
            }
        }
        for (i, c) in self.clients.iter().enumerate() {
            if !c.failed && (c.wasted_progress.value() > 0.0 || c.wasted_energy.joules() > 0.0) {
                v.push(format!(
                    "client {i} ({}): wasted work on a client that did not fail",
                    c.label
                ));
            }
        }
    }

    fn check_energy(&self, v: &mut Vec<String>) {
        if self.telemetry.is_empty() {
            return;
        }
        let integral = self.telemetry.total_energy().joules();
        if !energy_close(integral, self.total_energy.joules()) {
            v.push(format!(
                "total_energy {} J disagrees with the telemetry integral {integral} J",
                self.total_energy.joules()
            ));
        }
        let dyn_sum: f64 = self.clients.iter().map(|c| c.dyn_energy.joules()).sum();
        if dyn_sum > self.total_energy.joules() * (1.0 + ENERGY_REL_EPS) + 1e-9 {
            v.push(format!(
                "attributed dynamic energy {dyn_sum} J exceeds total board energy {} J",
                self.total_energy.joules()
            ));
        }
    }

    fn check_timeline(&self, v: &mut Vec<String>) {
        let makespan = self.makespan.value();
        for (i, c) in self.clients.iter().enumerate() {
            if c.finished.value() > makespan + TIME_EPS {
                v.push(format!(
                    "client {i} ({}): finished at {} after the makespan {makespan}",
                    c.label,
                    c.finished.value()
                ));
            }
            if c.started.value() > c.finished.value() + TIME_EPS {
                v.push(format!(
                    "client {i} ({}): started at {} after finishing at {}",
                    c.label,
                    c.started.value(),
                    c.finished.value()
                ));
            }
            let mut prev = Seconds::ZERO;
            for comp in &c.completions {
                if comp.at < prev {
                    v.push(format!(
                        "client {i} ({}): completions out of time order at {}",
                        c.label,
                        comp.at.value()
                    ));
                    break;
                }
                prev = comp.at;
            }
            if let Some(last) = c.completions.last() {
                if last.at.value() > makespan + TIME_EPS {
                    v.push(format!(
                        "client {i} ({}): completion at {} after the makespan {makespan}",
                        c.label,
                        last.at.value()
                    ));
                }
            }
        }
        if !self.telemetry.is_empty() {
            let covered = self.telemetry.total_time().value();
            if covered > makespan + 1e-6 {
                v.push(format!(
                    "telemetry covers {covered} s, past the makespan {makespan} s"
                ));
            }
        }
    }

    /// Aborted clients must go silent: after a client's fault time, the
    /// log may contain no further activity for it and its completion list
    /// may not grow. Only meaningful when the run recorded events.
    fn check_events(&self, v: &mut Vec<String>) {
        if self.events.is_empty() {
            return;
        }
        for (i, c) in self.clients.iter().enumerate() {
            if !c.failed {
                continue;
            }
            let fault_at = self.events.for_client(i).find_map(|e| match e.kind {
                EventKind::ClientFault { .. } => Some(e.at),
                _ => None,
            });
            let Some(fault_at) = fault_at else {
                v.push(format!(
                    "client {i} ({}): failed but the log has no ClientFault event for it",
                    c.label
                ));
                continue;
            };
            for e in self.events.for_client(i) {
                let active = matches!(
                    e.kind,
                    EventKind::TaskStart { .. }
                        | EventKind::TaskEnd { .. }
                        | EventKind::KernelStart { .. }
                        | EventKind::KernelEnd { .. }
                        | EventKind::MemoryGranted { .. }
                );
                if active && e.at.value() > fault_at.value() + TIME_EPS {
                    v.push(format!(
                        "client {i} ({}): {:?} at {} — activity after its abort at {}",
                        c.label,
                        e.kind,
                        e.at.value(),
                        fault_at.value()
                    ));
                }
            }
            if let Some(last) = c.completions.last() {
                if last.at.value() > fault_at.value() + TIME_EPS {
                    v.push(format!(
                        "client {i} ({}): completion at {} after its abort at {}",
                        c.label,
                        last.at.value(),
                        fault_at.value()
                    ));
                }
            }
        }
        // The log is appended in simulation order; time must never rewind.
        let mut prev = Seconds::ZERO;
        for e in self.events.events() {
            if e.at < prev {
                v.push(format!("event log rewinds time at {}", e.at.value()));
                break;
            }
            prev = e.at;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::device::DeviceSpec;
    use crate::engine::{Engine, EngineConfig, SharingMode};
    use crate::events::EventKind;
    use crate::fault::FaultPlan;
    use crate::kernel::{KernelSpec, LaunchConfig};
    use crate::program::{ClientProgram, TaskProgram};
    use mpshare_types::{Energy, Fraction, MemBytes, Seconds, TaskId};

    fn program(label: &str, id: u64, dur: f64) -> ClientProgram {
        let device = DeviceSpec::a100x();
        let kernel = KernelSpec::from_launch(
            &device,
            LaunchConfig::dense(216 * 32, 256),
            Seconds::new(dur),
        )
        .with_sm_demand(Fraction::new(0.4));
        let mut t = TaskProgram::new(TaskId::new(id), label, MemBytes::from_mib(128));
        t.push_kernel(kernel);
        let mut c = ClientProgram::new(label);
        c.push_task(t);
        c
    }

    fn run_with_fault() -> crate::engine::RunResult {
        let device = DeviceSpec::a100x();
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);
        let config = EngineConfig::new(
            device,
            SharingMode::Mps {
                partitions: vec![Fraction::ONE; 2],
            },
        )
        .with_event_log(true)
        .with_fault_plan(faults.widen_to_domain());
        Engine::new(config, vec![program("a", 0, 3.0), program("b", 1, 3.0)])
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn sound_runs_have_no_violations() {
        let r = run_with_fault();
        assert_eq!(r.invariant_violations(Some(2)), Vec::<String>::new());
    }

    #[test]
    fn mutated_task_total_fires() {
        let mut r = run_with_fault();
        r.tasks_completed += 1;
        let v = r.invariant_violations(None);
        assert!(v.iter().any(|m| m.contains("tasks_completed")), "{v:?}");
    }

    #[test]
    fn broken_task_ledger_fires() {
        let r = run_with_fault();
        let v = r.invariant_violations(Some(99));
        assert!(v.iter().any(|m| m.contains("ledger")), "{v:?}");
    }

    #[test]
    fn energy_leak_fires() {
        let mut r = run_with_fault();
        r.total_energy = Energy::from_joules(r.total_energy.joules() + 1.0);
        let v = r.invariant_violations(Some(2));
        assert!(v.iter().any(|m| m.contains("telemetry integral")), "{v:?}");
    }

    #[test]
    fn wasted_total_drift_fires() {
        let mut r = run_with_fault();
        r.wasted_energy = Energy::from_joules(r.wasted_energy.joules() * 2.0 + 1.0);
        let v = r.invariant_violations(Some(2));
        assert!(v.iter().any(|m| m.contains("wasted_energy")), "{v:?}");
    }

    #[test]
    fn post_abort_activity_fires() {
        let mut r = run_with_fault();
        assert!(r.clients[0].failed);
        let after = Seconds::new(r.makespan.value() + 0.5);
        r.events.record(
            after,
            0,
            EventKind::KernelStart {
                task: TaskId::new(0),
                kernel_index: 0,
            },
        );
        let v = r.invariant_violations(Some(2));
        assert!(
            v.iter().any(|m| m.contains("activity after its abort")),
            "{v:?}"
        );
    }

    #[test]
    fn wasted_work_without_fault_fires() {
        let device = DeviceSpec::a100x();
        let config = EngineConfig::new(
            device,
            SharingMode::Mps {
                partitions: vec![Fraction::ONE],
            },
        );
        let mut r = Engine::new(config, vec![program("a", 0, 1.0)])
            .unwrap()
            .run()
            .unwrap();
        assert!(r.invariant_violations(Some(1)).is_empty());
        r.wasted_progress = Seconds::new(0.5);
        let v = r.invariant_violations(Some(1));
        assert!(v.iter().any(|m| m.contains("without any fault")), "{v:?}");
    }
}
