//! Resource-contention solver.
//!
//! Given the set of kernels resident on the GPU at one instant — each with
//! its MPS partition, SM-throughput demand, and memory-bandwidth demand —
//! the solver computes every kernel's progress rate relative to solo
//! execution. The model composes four effects, in order:
//!
//! 1. **Partition response** (granularity): wave-quantized speed at the
//!    partition's SM count ([`crate::kernel::KernelSpec::speed_at_partition`]).
//! 2. **SM-throughput contention**: if combined demand exceeds the device,
//!    all kernels scale proportionally — MPS has no SM performance
//!    isolation between oversubscribed partitions.
//! 3. **Memory-bandwidth contention**: HBM arbitration is modeled as
//!    max-min fair sharing, so a compute-bound kernel is *not* slowed when
//!    a co-runner saturates the bus, but bandwidth hogs split the residual
//!    fairly.
//! 4. **Cache/sharing pressure**: MPS shares L2, the launch path,
//!    scheduling hardware, and caches between clients; each kernel is
//!    slowed by `1 / (1 + cache_sensitivity·Σ other BW pressure +
//!    client_sensitivity·min(n−1, 6) + overhead·(n−1))`. The per-co-runner
//!    term saturates: beyond a handful of co-runners the shared front-end
//!    is already fully contended.
//!
//! Clock throttling from the power cap is applied afterwards by the engine
//! (see [`crate::power`]) because it depends on total power, which depends
//! on the rates computed here.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;
use mpshare_types::Fraction;
use serde::{Deserialize, Serialize};

/// Co-runner count beyond which per-client pressure stops growing (the
/// shared front-end is saturated).
pub const CLIENT_PRESSURE_CAP: f64 = 6.0;

/// Per-kernel result of the contention solve, before clock throttling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Progress rate relative to solo full-partition execution, in `[0, 1]`.
    pub rate: f64,
    /// Fraction of device SM throughput consumed at this rate.
    pub sm_share: f64,
    /// Fraction of device memory bandwidth consumed at this rate.
    pub bw_share: f64,
    /// Weighted dynamic-power contribution (before clock scaling), watts.
    pub dyn_power_watts: f64,
}

/// One kernel's inputs to the contention solve.
#[derive(Debug, Clone, Copy)]
pub struct Contender<'a> {
    pub kernel: &'a KernelSpec,
    /// The MPS SM partition (active thread percentage) of the owning client.
    pub partition: Fraction,
}

/// Precomputed per-kernel solve inputs.
///
/// Everything [`ContentionSolver::solve`] derives from `(device, kernel,
/// partition)` is invariant while the kernel stays resident, so the engine
/// computes it once when the kernel starts (hoisting the occupancy/limits
/// arithmetic of [`KernelSpec::speed_at_partition`] out of the per-event
/// solve) and replays it through [`ContentionSolver::solve_prepared_into`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedContender {
    /// Wave-quantized speed at the owning client's partition
    /// ([`KernelSpec::speed_at_partition`]).
    pub speed_cap: f64,
    /// SM-throughput demand rescaled to the executing device.
    pub sm_demand: f64,
    /// Memory-bandwidth demand rescaled to the executing device.
    pub bw_demand: f64,
    pub cache_sensitivity: f64,
    pub client_sensitivity: f64,
    pub power_scale: f64,
}

impl PreparedContender {
    /// Performs exactly the per-contender derivations of
    /// [`ContentionSolver::solve`] steps 1–2, in the same order.
    pub fn new(device: &DeviceSpec, kernel: &KernelSpec, partition: Fraction) -> Self {
        PreparedContender {
            speed_cap: kernel.speed_at_partition(device, partition),
            sm_demand: kernel.sm_demand_on(device),
            bw_demand: kernel.bw_demand_on(device),
            cache_sensitivity: kernel.cache_sensitivity,
            client_sensitivity: kernel.client_sensitivity,
            power_scale: kernel.power_scale,
        }
    }
}

/// Reusable buffers for [`ContentionSolver::solve_prepared_into`], so the
/// engine's per-event solve allocates nothing after warm-up.
///
/// Beyond buffer reuse, the scratch doubles as the *state* of the
/// incremental solver ([`ContentionSolver::solve_prepared_join_into`] /
/// [`ContentionSolver::solve_prepared_leave_into`]): each full solve leaves
/// behind the left-to-right partial sums of its three ordered reductions
/// (SM demand, wanted bandwidth, used bandwidth) plus flags describing
/// which paths it took. A single join/leave then only has to re-fold the
/// sum tails from the changed position and rerun the O(n) final pass,
/// instead of rebuilding every intermediate vector.
#[derive(Debug, Default)]
pub struct SolveScratch {
    r1: Vec<f64>,
    r2: Vec<f64>,
    wanted: Vec<f64>,
    granted: Vec<f64>,
    order: Vec<usize>,
    bw_used: Vec<f64>,
    /// `sm_prefix[j]` = fold of the first `j` SM-demand terms (len n+1).
    sm_prefix: Vec<f64>,
    /// Same shape for the wanted-bandwidth fold.
    wanted_prefix: Vec<f64>,
    /// Same shape for the used-bandwidth fold.
    bw_prefix: Vec<f64>,
    /// Last solve hit SM oversubscription (`compute_scale != 1`).
    scaled: bool,
    /// Last solve took the bandwidth water-fill path (`granted != wanted`).
    bw_constrained: bool,
    /// The vectors above mirror the last solved input; cleared on entry to
    /// every solve and set only on a completed one, so an aborted
    /// incremental attempt can never be mistaken for valid state.
    valid: bool,
}

impl SolveScratch {
    /// A scratch with every internal vector pre-sized for `n` contenders,
    /// so no solve up to that membership ever grows a buffer. The engine
    /// sizes its scratch to the client count at construction; benchmarks
    /// size theirs outside the measured loop.
    pub fn with_capacity(n: usize) -> Self {
        let mut scratch = SolveScratch::default();
        scratch.reserve(n);
        scratch
    }

    /// Ensures capacity for `n` contenders (see [`SolveScratch::with_capacity`]).
    pub fn reserve(&mut self, n: usize) {
        self.r1.reserve(n);
        self.r2.reserve(n);
        self.wanted.reserve(n);
        self.granted.reserve(n);
        self.order.reserve(n);
        self.bw_used.reserve(n);
        self.sm_prefix.reserve(n + 1);
        self.wanted_prefix.reserve(n + 1);
        self.bw_prefix.reserve(n + 1);
    }

    /// Marks the scratch as holding no previous solution, so the next
    /// incremental join/leave falls back to a full solve. Called when a
    /// recycled scratch moves to a new engine: the new run must not splice
    /// into the previous run's prefix sums.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }
}

/// Stateless solver; holds the device and the device-level sharing overhead.
#[derive(Debug, Clone)]
pub struct ContentionSolver {
    device: DeviceSpec,
    /// Per-additional-co-runner slowdown coefficient (shared scheduling
    /// hardware / L2 pressure under MPS). Zero disables the effect.
    sharing_overhead: f64,
    /// When true, all contenders belong to one process (CUDA Streams):
    /// they share an address space and launch path, so the per-client
    /// pressure terms (client sensitivity, sharing overhead) do not apply.
    /// Resource contention (SM throughput, bandwidth, cache) still does.
    same_process: bool,
}

impl ContentionSolver {
    pub fn new(device: DeviceSpec, sharing_overhead: f64) -> Self {
        assert!(
            sharing_overhead >= 0.0 && sharing_overhead.is_finite(),
            "sharing overhead must be non-negative"
        );
        ContentionSolver {
            device,
            sharing_overhead,
            same_process: false,
        }
    }

    /// Marks all contenders as streams of one process (no per-client
    /// pressure).
    pub fn with_same_process(mut self, same_process: bool) -> Self {
        self.same_process = same_process;
        self
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Precomputes a contender's invariant solve inputs on this solver's
    /// device (see [`PreparedContender`]).
    pub fn prepare(&self, kernel: &KernelSpec, partition: Fraction) -> PreparedContender {
        PreparedContender::new(&self.device, kernel, partition)
    }

    /// Solves for the rates of all currently running kernels.
    ///
    /// Returns one [`Allocation`] per contender, in input order. With an
    /// empty input the result is empty. All outputs are finite; rates are
    /// in `[0, 1]`, and `Σ sm_share ≤ 1`, `Σ bw_share ≤ 1 + ε`.
    ///
    /// This is a thin wrapper over [`Self::solve_prepared_into`]: the
    /// per-contender derivations move into [`PreparedContender::new`] and
    /// every downstream operation runs in the same order on the same
    /// values, so results are bit-identical to the historical direct
    /// implementation.
    pub fn solve(&self, contenders: &[Contender<'_>]) -> Vec<Allocation> {
        let prepared: Vec<PreparedContender> = contenders
            .iter()
            .map(|c| self.prepare(c.kernel, c.partition))
            .collect();
        let mut scratch = SolveScratch::default();
        let mut out = Vec::with_capacity(contenders.len());
        self.solve_prepared_into(&prepared, &mut scratch, &mut out);
        out
    }

    /// Allocation-free solve over precomputed contenders.
    ///
    /// `out` is cleared and refilled with one [`Allocation`] per prepared
    /// contender, in input order; `scratch` holds the intermediate vectors
    /// between calls.
    pub fn solve_prepared_into(
        &self,
        prepared: &[PreparedContender],
        scratch: &mut SolveScratch,
        out: &mut Vec<Allocation>,
    ) {
        out.clear();
        scratch.valid = false;
        let n = prepared.len();
        if n == 0 {
            // Record the empty solve so an incremental join from the idle
            // state has valid (trivial) prefixes to extend.
            scratch.r1.clear();
            scratch.r2.clear();
            scratch.wanted.clear();
            scratch.granted.clear();
            scratch.bw_used.clear();
            scratch.sm_prefix.clear();
            scratch.sm_prefix.push(0.0);
            scratch.wanted_prefix.clear();
            scratch.wanted_prefix.push(0.0);
            scratch.bw_prefix.clear();
            scratch.bw_prefix.push(0.0);
            scratch.scaled = false;
            scratch.bw_constrained = false;
            scratch.valid = true;
            return;
        }

        // Steps 1–2 (partition-capped speed, rescaled demands) are baked
        // into `prepared`; proportional SM-throughput contention follows.
        // The explicit fold is bit-identical to `Iterator::sum` (same
        // left-to-right `acc + term` chain) and leaves the partial sums
        // behind for the incremental solver.
        scratch.sm_prefix.clear();
        scratch.sm_prefix.push(0.0);
        let mut total_sm_demand = 0.0;
        for p in prepared {
            total_sm_demand += p.sm_demand * p.speed_cap;
            scratch.sm_prefix.push(total_sm_demand);
        }

        if total_sm_demand <= 1.0 {
            // Fast path: `compute_scale == 1.0` exactly, so
            // `r1 = speed_cap·1.0 = speed_cap` bit for bit. One fused,
            // branch-free pass over dense slots computes r1, the wanted
            // bandwidth, and its running fold (same `acc + term` chain the
            // multi-pass pipeline executed, so every value is identical).
            scratch.r1.clear();
            scratch.wanted.clear();
            scratch.wanted_prefix.clear();
            scratch.wanted_prefix.push(0.0);
            let mut total_wanted = 0.0;
            for p in prepared {
                let r = p.speed_cap;
                let w = p.bw_demand * r;
                scratch.r1.push(r);
                scratch.wanted.push(w);
                total_wanted += w;
                scratch.wanted_prefix.push(total_wanted);
            }
            if total_wanted <= 1.0 {
                // No water-fill either: `granted == wanted` makes
                // `r2 = r1·(g/w).min(1) = r1·1.0 = r1` exact (x/x == 1.0
                // for any finite non-zero x, and w == 0 keeps r2 = r1), and
                // `bw_used = bw_demand·r2 = bw_demand·r1 = wanted` is the
                // same multiplication of the same operands. The per-element
                // branch of the historical r2 pass collapses to copies.
                scratch.granted.clear();
                scratch.granted.extend_from_slice(&scratch.wanted);
                scratch.r2.clear();
                scratch.r2.extend_from_slice(&scratch.r1);
                scratch.bw_used.clear();
                scratch.bw_used.extend_from_slice(&scratch.wanted);
                scratch.bw_prefix.clear();
                scratch.bw_prefix.extend_from_slice(&scratch.wanted_prefix);
                self.finish_solve(prepared, total_wanted, &scratch.bw_used, &scratch.r2, out);
                scratch.scaled = false;
                scratch.bw_constrained = false;
                scratch.valid = true;
                return;
            }
            // Bandwidth-constrained tail (r1/wanted already computed).
            self.solve_constrained_tail(prepared, total_wanted, false, scratch, out);
            return;
        }

        // SM-oversubscribed path: every r1 carries the proportional scale.
        let compute_scale = 1.0 / total_sm_demand;
        scratch.r1.clear();
        scratch
            .r1
            .extend(prepared.iter().map(|p| p.speed_cap * compute_scale));
        scratch.wanted.clear();
        scratch.wanted.extend(
            prepared
                .iter()
                .zip(&scratch.r1)
                .map(|(p, r)| p.bw_demand * r),
        );
        scratch.wanted_prefix.clear();
        scratch.wanted_prefix.push(0.0);
        let mut total_wanted = 0.0;
        for w in &scratch.wanted {
            total_wanted += *w;
            scratch.wanted_prefix.push(total_wanted);
        }
        self.solve_constrained_tail(prepared, total_wanted, true, scratch, out);
    }

    /// Steps 3–4 for solves that left the fused fast path: max-min
    /// bandwidth water-fill, the historical per-element r2 pass, the
    /// used-bandwidth fold, and the shared pressure pass. Verbatim the
    /// tail of the historical single-function pipeline.
    fn solve_constrained_tail(
        &self,
        prepared: &[PreparedContender],
        total_wanted: f64,
        scaled: bool,
        scratch: &mut SolveScratch,
        out: &mut Vec<Allocation>,
    ) {
        let bw_constrained = max_min_share_with_total(
            &scratch.wanted,
            total_wanted,
            1.0,
            &mut scratch.granted,
            &mut scratch.order,
        );
        scratch.r2.clear();
        scratch.r2.extend(
            scratch
                .r1
                .iter()
                .zip(scratch.wanted.iter().zip(&scratch.granted))
                .map(
                    |(r, (w, g))| {
                        if *w > 0.0 {
                            r * (g / w).min(1.0)
                        } else {
                            *r
                        }
                    },
                ),
        );

        scratch.bw_used.clear();
        scratch.bw_used.extend(
            prepared
                .iter()
                .zip(&scratch.r2)
                .map(|(p, r)| p.bw_demand * r),
        );
        scratch.bw_prefix.clear();
        scratch.bw_prefix.push(0.0);
        let mut total_bw_used = 0.0;
        for b in &scratch.bw_used {
            total_bw_used += *b;
            scratch.bw_prefix.push(total_bw_used);
        }

        self.finish_solve(prepared, total_bw_used, &scratch.bw_used, &scratch.r2, out);
        scratch.scaled = scaled;
        scratch.bw_constrained = bw_constrained;
        scratch.valid = true;
    }

    /// Incremental re-solve after a single contender joined at `pos`
    /// (`prepared` is the membership *after* the join, in solve order).
    ///
    /// Succeeds only on the linear fast path — the previous solve (mirrored
    /// by `scratch`) and the new one both avoid SM oversubscription and the
    /// bandwidth water-fill, so every unchanged contender's intermediate
    /// values are bitwise identical (`compute_scale == 1` makes
    /// `r1 = speed_cap·1.0 = speed_cap` exact, and `granted == wanted`
    /// makes `r2 = r1·(g/w).min(1) = r1·1.0 = r1` exact). Only the sum
    /// tails from `pos` are re-folded — the same `acc + term` chain the
    /// full solve would execute — and the final pressure pass runs
    /// unchanged, so the result is bit-identical to a from-scratch solve
    /// (cross-checked by the engine in debug builds).
    ///
    /// Returns `false` — caller must fall back to
    /// [`Self::solve_prepared_into`] — when the scratch is stale or either
    /// solve leaves the fast path. The scratch may then be partially
    /// updated; the full solve rebuilds it entirely.
    pub fn solve_prepared_join_into(
        &self,
        prepared: &[PreparedContender],
        pos: usize,
        scratch: &mut SolveScratch,
        out: &mut Vec<Allocation>,
    ) -> bool {
        let n = prepared.len();
        if !scratch.valid
            || scratch.scaled
            || scratch.bw_constrained
            || pos >= n
            || scratch.r1.len() + 1 != n
        {
            return false;
        }
        scratch.valid = false;

        // Re-fold the SM-demand tail with the inserted term.
        let mut acc = scratch.sm_prefix[pos];
        scratch.sm_prefix.truncate(pos + 1);
        for p in &prepared[pos..] {
            acc += p.sm_demand * p.speed_cap;
            scratch.sm_prefix.push(acc);
        }
        if acc > 1.0 {
            return false; // compute_scale != 1: every r1 changes.
        }
        let compute_scale = 1.0;
        scratch
            .r1
            .insert(pos, prepared[pos].speed_cap * compute_scale);
        scratch
            .wanted
            .insert(pos, prepared[pos].bw_demand * scratch.r1[pos]);

        let mut acc = scratch.wanted_prefix[pos];
        scratch.wanted_prefix.truncate(pos + 1);
        for w in &scratch.wanted[pos..] {
            acc += *w;
            scratch.wanted_prefix.push(acc);
        }
        if acc > 1.0 {
            return false; // water-fill: granted diverges from wanted.
        }
        scratch.r2.insert(pos, scratch.r1[pos]);
        scratch
            .bw_used
            .insert(pos, prepared[pos].bw_demand * scratch.r2[pos]);

        let mut acc = scratch.bw_prefix[pos];
        scratch.bw_prefix.truncate(pos + 1);
        for b in &scratch.bw_used[pos..] {
            acc += *b;
            scratch.bw_prefix.push(acc);
        }
        let total_bw_used = acc;

        self.finish_solve(prepared, total_bw_used, &scratch.bw_used, &scratch.r2, out);
        scratch.valid = true;
        true
    }

    /// Incremental re-solve after the contender at `pos` left (`prepared`
    /// is the membership *after* the removal). Same fast-path contract as
    /// [`Self::solve_prepared_join_into`]; removing a non-negative term can
    /// only shrink the (monotonically rounded) fold totals, but the
    /// threshold checks are kept for defense in depth.
    pub fn solve_prepared_leave_into(
        &self,
        prepared: &[PreparedContender],
        pos: usize,
        scratch: &mut SolveScratch,
        out: &mut Vec<Allocation>,
    ) -> bool {
        let n = prepared.len();
        if !scratch.valid
            || scratch.scaled
            || scratch.bw_constrained
            || n == 0
            || pos > n
            || scratch.r1.len() != n + 1
        {
            // n == 0 (last contender leaving) routes to the full solve,
            // which handles the empty set and re-seeds the scratch.
            return false;
        }
        scratch.valid = false;

        scratch.r1.remove(pos);
        scratch.wanted.remove(pos);
        scratch.r2.remove(pos);
        scratch.bw_used.remove(pos);

        let mut acc = scratch.sm_prefix[pos];
        scratch.sm_prefix.truncate(pos + 1);
        for p in &prepared[pos..] {
            acc += p.sm_demand * p.speed_cap;
            scratch.sm_prefix.push(acc);
        }
        if acc > 1.0 {
            return false;
        }

        let mut acc = scratch.wanted_prefix[pos];
        scratch.wanted_prefix.truncate(pos + 1);
        for w in &scratch.wanted[pos..] {
            acc += *w;
            scratch.wanted_prefix.push(acc);
        }
        if acc > 1.0 {
            return false;
        }

        let mut acc = scratch.bw_prefix[pos];
        scratch.bw_prefix.truncate(pos + 1);
        for b in &scratch.bw_used[pos..] {
            acc += *b;
            scratch.bw_prefix.push(acc);
        }
        let total_bw_used = acc;

        self.finish_solve(prepared, total_bw_used, &scratch.bw_used, &scratch.r2, out);
        scratch.valid = true;
        true
    }

    /// Step 4 (cache/sharing pressure) and allocation emission, shared
    /// verbatim between the full and incremental solves so their final
    /// arithmetic is the same code.
    ///
    /// Occupancy (and therefore power) follows the pre-pressure rates:
    /// a kernel slowed by cache thrash or client pressure still holds
    /// its SMs and burns power while stalled — `nvidia-smi` reports it
    /// busy. Only *progress* (and the data actually moved on the bus)
    /// takes the slowdown.
    fn finish_solve(
        &self,
        prepared: &[PreparedContender],
        total_bw_used: f64,
        bw_used: &[f64],
        r2: &[f64],
        out: &mut Vec<Allocation>,
    ) {
        let n = prepared.len();
        out.clear();
        // Loop-invariant per-co-runner terms, hoisted: the per-element
        // arithmetic below multiplies/adds the same values in the same
        // order as the historical in-loop computation.
        let corunners = if self.same_process {
            0.0
        } else {
            (n as f64 - 1.0).max(0.0)
        };
        let capped_corunners = corunners.min(CLIENT_PRESSURE_CAP);
        let overhead_term = self.sharing_overhead * corunners;
        for (i, p) in prepared.iter().enumerate() {
            let own_bw = bw_used[i];
            let other_pressure = (total_bw_used - own_bw).max(0.0);
            let slowdown = 1.0
                + p.cache_sensitivity * other_pressure
                + p.client_sensitivity * capped_corunners
                + overhead_term;
            let rate = r2[i] / slowdown;
            let sm_share = p.sm_demand * r2[i];
            let bw_share = p.bw_demand * rate;
            let dyn_power_watts = p.power_scale
                * (self.device.power_per_sm_pct * sm_share * 100.0
                    + self.device.power_per_bw_pct * bw_share * 100.0);
            out.push(Allocation {
                rate,
                sm_share,
                bw_share,
                dyn_power_watts,
            });
        }
    }
}

/// Max-min fair allocation of `capacity` among `wanted` demands
/// (water-filling): demands below the fair share are fully granted and the
/// residual is redistributed among the rest.
pub fn max_min_share(wanted: &[f64], capacity: f64) -> Vec<f64> {
    let mut granted = Vec::new();
    let mut order = Vec::new();
    max_min_share_into(wanted, capacity, &mut granted, &mut order);
    granted
}

/// Buffer-reusing form of [`max_min_share`]: `granted` receives the
/// allocation, `order` is sort scratch.
fn max_min_share_into(
    wanted: &[f64],
    capacity: f64,
    granted: &mut Vec<f64>,
    order: &mut Vec<usize>,
) {
    let total: f64 = wanted.iter().sum();
    max_min_share_with_total(wanted, total, capacity, granted, order);
}

/// [`max_min_share_into`] with the demand total precomputed by the caller
/// (the solver already folds it for its prefix sums). Returns whether the
/// water-fill path was taken (`granted` diverges from `wanted`).
fn max_min_share_with_total(
    wanted: &[f64],
    total: f64,
    capacity: f64,
    granted: &mut Vec<f64>,
    order: &mut Vec<usize>,
) -> bool {
    let n = wanted.len();
    granted.clear();
    granted.resize(n, 0.0);
    if n == 0 {
        return false;
    }
    if total <= capacity {
        granted.copy_from_slice(wanted);
        return false;
    }

    // Sort indices by demand ascending; grant in order, recomputing the fair
    // share of the remaining capacity at each step.
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| wanted[a].partial_cmp(&wanted[b]).expect("finite demands"));

    let mut remaining_capacity = capacity;
    let mut remaining_users = n;
    for &i in order.iter() {
        let fair = remaining_capacity / remaining_users as f64;
        let g = wanted[i].min(fair);
        granted[i] = g;
        remaining_capacity -= g;
        remaining_users -= 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchConfig;
    use mpshare_types::Seconds;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    /// A kernel occupying `sm` of the device's SM throughput and `bw` of
    /// its bandwidth, with a grid large enough to scale linearly.
    fn k(sm: f64, bw: f64) -> KernelSpec {
        KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 100, 1024),
            Seconds::new(1.0),
        )
        .with_sm_demand(Fraction::new(sm))
        .with_bw_demand(Fraction::new(bw))
    }

    fn solve(kernels: &[KernelSpec]) -> Vec<Allocation> {
        let solver = ContentionSolver::new(dev(), 0.0);
        let contenders: Vec<Contender<'_>> = kernels
            .iter()
            .map(|kernel| Contender {
                kernel,
                partition: Fraction::ONE,
            })
            .collect();
        solver.solve(&contenders)
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(solve(&[]).is_empty());
    }

    #[test]
    fn solo_low_utilization_kernel_runs_at_full_rate() {
        let a = solve(&[k(0.3, 0.1)]);
        assert!((a[0].rate - 1.0).abs() < 1e-12);
        assert!((a[0].sm_share - 0.3).abs() < 1e-12);
        assert!((a[0].bw_share - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_interfering_pair_runs_at_full_rate() {
        // The paper's rule: combined SM < 100% and BW < 100% -> no
        // interference.
        let a = solve(&[k(0.4, 0.2), k(0.5, 0.3)]);
        assert!((a[0].rate - 1.0).abs() < 1e-9);
        assert!((a[1].rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sm_oversubscription_scales_proportionally() {
        // 0.8 + 0.8 = 1.6 demand -> everyone at 1/1.6.
        let a = solve(&[k(0.8, 0.0), k(0.8, 0.0)]);
        for alloc in &a {
            assert!((alloc.rate - 1.0 / 1.6).abs() < 1e-9);
        }
        let total_sm: f64 = a.iter().map(|x| x.sm_share).sum();
        assert!((total_sm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_hog_does_not_slow_compute_bound_corunner() {
        // Kernel A: compute bound (bw 0.05). Kernel B: saturates BW (0.9).
        // Combined wanted = 0.95 < 1 -> no slowdown at all. Push B to 2
        // copies to exceed capacity.
        let a = solve(&[k(0.2, 0.05), k(0.3, 0.9), k(0.3, 0.9)]);
        // A gets its 0.05 fully (max-min), so it runs at full rate.
        assert!((a[0].rate - 1.0).abs() < 1e-9, "rate was {}", a[0].rate);
        // B kernels split the residual 0.95/2 each -> rate ≈ 0.475/0.9.
        let expected = (0.95 / 2.0) / 0.9;
        assert!((a[1].rate - expected).abs() < 1e-6);
        assert!((a[2].rate - expected).abs() < 1e-6);
    }

    #[test]
    fn total_shares_never_exceed_capacity() {
        let kernels: Vec<KernelSpec> = (0..6).map(|_| k(0.5, 0.4)).collect();
        let a = solve(&kernels);
        let total_sm: f64 = a.iter().map(|x| x.sm_share).sum();
        let total_bw: f64 = a.iter().map(|x| x.bw_share).sum();
        assert!(total_sm <= 1.0 + 1e-9, "sm {total_sm}");
        assert!(total_bw <= 1.0 + 1e-9, "bw {total_bw}");
    }

    #[test]
    fn partition_caps_rate_for_small_partitions() {
        let solver = ContentionSolver::new(dev(), 0.0);
        let kernel = k(0.9, 0.0);
        let a = solver.solve(&[Contender {
            kernel: &kernel,
            partition: Fraction::new(0.25),
        }]);
        // Linear-scaling kernel at 25% partition: rate ≈ 0.25.
        assert!((a[0].rate - 0.25).abs() < 0.01, "rate {}", a[0].rate);
    }

    #[test]
    fn cache_sensitivity_slows_victim_under_pressure() {
        let victim = k(0.2, 0.1).with_cache_sensitivity(1.0);
        let aggressor = k(0.2, 0.5);
        let solo = solve(std::slice::from_ref(&victim));
        let shared = solve(&[victim.clone(), aggressor]);
        assert!((solo[0].rate - 1.0).abs() < 1e-9);
        // Pressure ≈ 0.5 -> slowdown ≈ 1.5.
        assert!(
            shared[0].rate < 0.72 && shared[0].rate > 0.6,
            "rate {}",
            shared[0].rate
        );
    }

    #[test]
    fn sharing_overhead_scales_with_corunner_count() {
        let solver = ContentionSolver::new(dev(), 0.01);
        let kernel = k(0.05, 0.0);
        let rate_of = |n: usize| {
            let kernels: Vec<KernelSpec> = (0..n).map(|_| kernel.clone()).collect();
            let contenders: Vec<Contender<'_>> = kernels
                .iter()
                .map(|kernel| Contender {
                    kernel,
                    partition: Fraction::ONE,
                })
                .collect();
            solver.solve(&contenders)[0].rate
        };
        let r1 = rate_of(1);
        let r4 = rate_of(4);
        let r16 = rate_of(16);
        assert!((r1 - 1.0).abs() < 1e-9);
        assert!(r4 < r1 && r16 < r4);
        assert!((r4 - 1.0 / 1.03).abs() < 1e-9);
    }

    #[test]
    fn dyn_power_reflects_shares_and_scale() {
        let kernel = k(0.5, 0.2).with_power_scale(2.0);
        let a = solve(std::slice::from_ref(&kernel));
        let d = dev();
        let expected = 2.0 * (d.power_per_sm_pct * 50.0 + d.power_per_bw_pct * 20.0);
        assert!((a[0].dyn_power_watts - expected).abs() < 1e-9);
    }

    #[test]
    fn max_min_share_under_capacity_grants_everything() {
        let g = max_min_share(&[0.2, 0.3], 1.0);
        assert_eq!(g, vec![0.2, 0.3]);
    }

    #[test]
    fn max_min_share_protects_small_demands() {
        let g = max_min_share(&[0.1, 0.9, 0.9], 1.0);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[1] - 0.45).abs() < 1e-12);
        assert!((g[2] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn max_min_share_equal_demands_split_evenly() {
        let g = max_min_share(&[0.8, 0.8, 0.8, 0.8], 1.0);
        for x in g {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    fn prepare_all(solver: &ContentionSolver, kernels: &[KernelSpec]) -> Vec<PreparedContender> {
        kernels
            .iter()
            .map(|kernel| solver.prepare(kernel, Fraction::ONE))
            .collect()
    }

    fn bits(allocs: &[Allocation]) -> Vec<[u64; 4]> {
        allocs
            .iter()
            .map(|a| {
                [
                    a.rate.to_bits(),
                    a.sm_share.to_bits(),
                    a.bw_share.to_bits(),
                    a.dyn_power_watts.to_bits(),
                ]
            })
            .collect()
    }

    #[test]
    fn incremental_join_matches_full_solve_bitwise() {
        let solver = ContentionSolver::new(dev(), 0.01);
        let kernels = vec![k(0.1, 0.05), k(0.2, 0.1), k(0.15, 0.2)];
        let prepared = prepare_all(&solver, &kernels);
        let mut scratch = SolveScratch::default();
        let mut out = Vec::new();
        // Seed with the first two, then join the third at each position.
        for pos in 0..=2 {
            let mut base: Vec<PreparedContender> = vec![prepared[0], prepared[1]];
            solver.solve_prepared_into(&base, &mut scratch, &mut out);
            base.insert(pos, prepared[2]);
            let mut inc = Vec::new();
            assert!(
                solver.solve_prepared_join_into(&base, pos, &mut scratch, &mut inc),
                "fast path expected at pos {pos}"
            );
            let mut full_scratch = SolveScratch::default();
            let mut full = Vec::new();
            solver.solve_prepared_into(&base, &mut full_scratch, &mut full);
            assert_eq!(bits(&inc), bits(&full), "join at pos {pos}");
        }
    }

    #[test]
    fn incremental_leave_matches_full_solve_bitwise() {
        let solver = ContentionSolver::new(dev(), 0.01);
        let kernels = vec![k(0.1, 0.05), k(0.2, 0.1), k(0.15, 0.2)];
        let prepared = prepare_all(&solver, &kernels);
        for pos in 0..prepared.len() {
            let mut scratch = SolveScratch::default();
            let mut out = Vec::new();
            solver.solve_prepared_into(&prepared, &mut scratch, &mut out);
            let mut after = prepared.clone();
            after.remove(pos);
            let mut inc = Vec::new();
            assert!(
                solver.solve_prepared_leave_into(&after, pos, &mut scratch, &mut inc),
                "fast path expected at pos {pos}"
            );
            let mut full_scratch = SolveScratch::default();
            let mut full = Vec::new();
            solver.solve_prepared_into(&after, &mut full_scratch, &mut full);
            assert_eq!(bits(&inc), bits(&full), "leave at pos {pos}");
        }
    }

    #[test]
    fn incremental_join_from_empty_set() {
        let solver = ContentionSolver::new(dev(), 0.0);
        let prepared = prepare_all(&solver, &[k(0.3, 0.1)]);
        let mut scratch = SolveScratch::default();
        let mut out = Vec::new();
        solver.solve_prepared_into(&[], &mut scratch, &mut out);
        let mut inc = Vec::new();
        assert!(solver.solve_prepared_join_into(&prepared, 0, &mut scratch, &mut inc));
        let mut full_scratch = SolveScratch::default();
        let mut full = Vec::new();
        solver.solve_prepared_into(&prepared, &mut full_scratch, &mut full);
        assert_eq!(bits(&inc), bits(&full));
    }

    #[test]
    fn incremental_falls_back_off_the_fast_path() {
        let solver = ContentionSolver::new(dev(), 0.0);
        let mut scratch = SolveScratch::default();
        let mut out = Vec::new();

        // Stale scratch.
        let one = prepare_all(&solver, &[k(0.3, 0.1)]);
        assert!(!solver.solve_prepared_join_into(&one, 0, &mut scratch, &mut out));

        // Joining pushes SM demand past the device: full solve required.
        let base = prepare_all(&solver, &[k(0.8, 0.0)]);
        solver.solve_prepared_into(&base, &mut scratch, &mut out);
        let both = prepare_all(&solver, &[k(0.8, 0.0), k(0.8, 0.0)]);
        assert!(!solver.solve_prepared_join_into(&both, 1, &mut scratch, &mut out));

        // Previous solve was bandwidth water-filled: scratch unusable.
        let hogs = prepare_all(&solver, &[k(0.3, 0.9), k(0.3, 0.9)]);
        solver.solve_prepared_into(&hogs, &mut scratch, &mut out);
        let less = prepare_all(&solver, &[k(0.3, 0.9)]);
        assert!(!solver.solve_prepared_leave_into(&less, 1, &mut scratch, &mut out));

        // A failed attempt leaves the scratch invalid until the next full
        // solve.
        solver.solve_prepared_into(&less, &mut scratch, &mut out);
        let mut inc = Vec::new();
        assert!(!solver.solve_prepared_leave_into(&[], 0, &mut scratch, &mut inc));
    }

    #[test]
    fn max_min_share_total_equals_capacity_when_oversubscribed() {
        let g = max_min_share(&[0.5, 0.7, 0.2, 0.9], 1.0);
        let total: f64 = g.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (gi, wi) in g.iter().zip([0.5, 0.7, 0.2, 0.9]) {
            assert!(*gi <= wi + 1e-12);
        }
    }
}
