//! Resource-contention solver.
//!
//! Given the set of kernels resident on the GPU at one instant — each with
//! its MPS partition, SM-throughput demand, and memory-bandwidth demand —
//! the solver computes every kernel's progress rate relative to solo
//! execution. The model composes four effects, in order:
//!
//! 1. **Partition response** (granularity): wave-quantized speed at the
//!    partition's SM count ([`crate::kernel::KernelSpec::speed_at_partition`]).
//! 2. **SM-throughput contention**: if combined demand exceeds the device,
//!    all kernels scale proportionally — MPS has no SM performance
//!    isolation between oversubscribed partitions.
//! 3. **Memory-bandwidth contention**: HBM arbitration is modeled as
//!    max-min fair sharing, so a compute-bound kernel is *not* slowed when
//!    a co-runner saturates the bus, but bandwidth hogs split the residual
//!    fairly.
//! 4. **Cache/sharing pressure**: MPS shares L2, the launch path,
//!    scheduling hardware, and caches between clients; each kernel is
//!    slowed by `1 / (1 + cache_sensitivity·Σ other BW pressure +
//!    client_sensitivity·min(n−1, 6) + overhead·(n−1))`. The per-co-runner
//!    term saturates: beyond a handful of co-runners the shared front-end
//!    is already fully contended.
//!
//! Clock throttling from the power cap is applied afterwards by the engine
//! (see [`crate::power`]) because it depends on total power, which depends
//! on the rates computed here.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;
use mpshare_types::Fraction;
use serde::{Deserialize, Serialize};

/// Co-runner count beyond which per-client pressure stops growing (the
/// shared front-end is saturated).
pub const CLIENT_PRESSURE_CAP: f64 = 6.0;

/// Per-kernel result of the contention solve, before clock throttling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Progress rate relative to solo full-partition execution, in `[0, 1]`.
    pub rate: f64,
    /// Fraction of device SM throughput consumed at this rate.
    pub sm_share: f64,
    /// Fraction of device memory bandwidth consumed at this rate.
    pub bw_share: f64,
    /// Weighted dynamic-power contribution (before clock scaling), watts.
    pub dyn_power_watts: f64,
}

/// One kernel's inputs to the contention solve.
#[derive(Debug, Clone, Copy)]
pub struct Contender<'a> {
    pub kernel: &'a KernelSpec,
    /// The MPS SM partition (active thread percentage) of the owning client.
    pub partition: Fraction,
}

/// Stateless solver; holds the device and the device-level sharing overhead.
#[derive(Debug, Clone)]
pub struct ContentionSolver {
    device: DeviceSpec,
    /// Per-additional-co-runner slowdown coefficient (shared scheduling
    /// hardware / L2 pressure under MPS). Zero disables the effect.
    sharing_overhead: f64,
    /// When true, all contenders belong to one process (CUDA Streams):
    /// they share an address space and launch path, so the per-client
    /// pressure terms (client sensitivity, sharing overhead) do not apply.
    /// Resource contention (SM throughput, bandwidth, cache) still does.
    same_process: bool,
}

impl ContentionSolver {
    pub fn new(device: DeviceSpec, sharing_overhead: f64) -> Self {
        assert!(
            sharing_overhead >= 0.0 && sharing_overhead.is_finite(),
            "sharing overhead must be non-negative"
        );
        ContentionSolver {
            device,
            sharing_overhead,
            same_process: false,
        }
    }

    /// Marks all contenders as streams of one process (no per-client
    /// pressure).
    pub fn with_same_process(mut self, same_process: bool) -> Self {
        self.same_process = same_process;
        self
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Solves for the rates of all currently running kernels.
    ///
    /// Returns one [`Allocation`] per contender, in input order. With an
    /// empty input the result is empty. All outputs are finite; rates are
    /// in `[0, 1]`, and `Σ sm_share ≤ 1`, `Σ bw_share ≤ 1 + ε`.
    pub fn solve(&self, contenders: &[Contender<'_>]) -> Vec<Allocation> {
        let n = contenders.len();
        if n == 0 {
            return Vec::new();
        }

        // Step 1: partition-capped speed for each kernel.
        let speed_cap: Vec<f64> = contenders
            .iter()
            .map(|c| c.kernel.speed_at_partition(&self.device, c.partition))
            .collect();

        // Step 2: proportional SM-throughput contention. Demands are
        // rescaled from each kernel's calibration device to this one.
        let sm_demands: Vec<f64> = contenders
            .iter()
            .map(|c| c.kernel.sm_demand_on(&self.device))
            .collect();
        let bw_demands: Vec<f64> = contenders
            .iter()
            .map(|c| c.kernel.bw_demand_on(&self.device))
            .collect();
        let total_sm_demand: f64 = sm_demands.iter().zip(&speed_cap).map(|(d, s)| d * s).sum();
        let compute_scale = if total_sm_demand > 1.0 {
            1.0 / total_sm_demand
        } else {
            1.0
        };
        let r1: Vec<f64> = speed_cap.iter().map(|s| s * compute_scale).collect();

        // Step 3: max-min fair bandwidth. wanted_i = bw_demand_i · r1_i.
        let wanted: Vec<f64> = bw_demands.iter().zip(&r1).map(|(d, r)| d * r).collect();
        let granted = max_min_share(&wanted, 1.0);
        let r2: Vec<f64> = r1
            .iter()
            .zip(wanted.iter().zip(&granted))
            .map(
                |(r, (w, g))| {
                    if *w > 0.0 {
                        r * (g / w).min(1.0)
                    } else {
                        *r
                    }
                },
            )
            .collect();

        // Step 4: cache/sharing pressure. Pressure on kernel i is the BW
        // consumption of everyone else plus a flat per-co-runner term.
        let bw_used: Vec<f64> = bw_demands.iter().zip(&r2).map(|(d, r)| d * r).collect();
        let total_bw_used: f64 = bw_used.iter().sum();
        let rates: Vec<f64> = contenders
            .iter()
            .zip(r2.iter().zip(&bw_used))
            .map(|(c, (r, own_bw))| {
                let other_pressure = (total_bw_used - own_bw).max(0.0);
                let corunners = if self.same_process {
                    0.0
                } else {
                    (n as f64 - 1.0).max(0.0)
                };
                let slowdown = 1.0
                    + c.kernel.cache_sensitivity * other_pressure
                    + c.kernel.client_sensitivity * corunners.min(CLIENT_PRESSURE_CAP)
                    + self.sharing_overhead * corunners;
                r / slowdown
            })
            .collect();

        // Occupancy (and therefore power) follows the pre-pressure rates:
        // a kernel slowed by cache thrash or client pressure still holds
        // its SMs and burns power while stalled — `nvidia-smi` reports it
        // busy. Only *progress* (and the data actually moved on the bus)
        // takes the slowdown.
        contenders
            .iter()
            .zip(rates.iter().zip(&r2))
            .enumerate()
            .map(|(i, (c, (r, busy_rate)))| {
                let sm_share = sm_demands[i] * busy_rate;
                let bw_share = bw_demands[i] * r;
                let dyn_power_watts = c.kernel.power_scale
                    * (self.device.power_per_sm_pct * sm_share * 100.0
                        + self.device.power_per_bw_pct * bw_share * 100.0);
                Allocation {
                    rate: *r,
                    sm_share,
                    bw_share,
                    dyn_power_watts,
                }
            })
            .collect()
    }
}

/// Max-min fair allocation of `capacity` among `wanted` demands
/// (water-filling): demands below the fair share are fully granted and the
/// residual is redistributed among the rest.
pub fn max_min_share(wanted: &[f64], capacity: f64) -> Vec<f64> {
    let n = wanted.len();
    let mut granted = vec![0.0; n];
    if n == 0 {
        return granted;
    }
    let total: f64 = wanted.iter().sum();
    if total <= capacity {
        granted.copy_from_slice(wanted);
        return granted;
    }

    // Sort indices by demand ascending; grant in order, recomputing the fair
    // share of the remaining capacity at each step.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| wanted[a].partial_cmp(&wanted[b]).expect("finite demands"));

    let mut remaining_capacity = capacity;
    let mut remaining_users = n;
    for &i in &order {
        let fair = remaining_capacity / remaining_users as f64;
        let g = wanted[i].min(fair);
        granted[i] = g;
        remaining_capacity -= g;
        remaining_users -= 1;
    }
    granted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchConfig;
    use mpshare_types::Seconds;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    /// A kernel occupying `sm` of the device's SM throughput and `bw` of
    /// its bandwidth, with a grid large enough to scale linearly.
    fn k(sm: f64, bw: f64) -> KernelSpec {
        KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 100, 1024),
            Seconds::new(1.0),
        )
        .with_sm_demand(Fraction::new(sm))
        .with_bw_demand(Fraction::new(bw))
    }

    fn solve(kernels: &[KernelSpec]) -> Vec<Allocation> {
        let solver = ContentionSolver::new(dev(), 0.0);
        let contenders: Vec<Contender<'_>> = kernels
            .iter()
            .map(|kernel| Contender {
                kernel,
                partition: Fraction::ONE,
            })
            .collect();
        solver.solve(&contenders)
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(solve(&[]).is_empty());
    }

    #[test]
    fn solo_low_utilization_kernel_runs_at_full_rate() {
        let a = solve(&[k(0.3, 0.1)]);
        assert!((a[0].rate - 1.0).abs() < 1e-12);
        assert!((a[0].sm_share - 0.3).abs() < 1e-12);
        assert!((a[0].bw_share - 0.1).abs() < 1e-12);
    }

    #[test]
    fn non_interfering_pair_runs_at_full_rate() {
        // The paper's rule: combined SM < 100% and BW < 100% -> no
        // interference.
        let a = solve(&[k(0.4, 0.2), k(0.5, 0.3)]);
        assert!((a[0].rate - 1.0).abs() < 1e-9);
        assert!((a[1].rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sm_oversubscription_scales_proportionally() {
        // 0.8 + 0.8 = 1.6 demand -> everyone at 1/1.6.
        let a = solve(&[k(0.8, 0.0), k(0.8, 0.0)]);
        for alloc in &a {
            assert!((alloc.rate - 1.0 / 1.6).abs() < 1e-9);
        }
        let total_sm: f64 = a.iter().map(|x| x.sm_share).sum();
        assert!((total_sm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_hog_does_not_slow_compute_bound_corunner() {
        // Kernel A: compute bound (bw 0.05). Kernel B: saturates BW (0.9).
        // Combined wanted = 0.95 < 1 -> no slowdown at all. Push B to 2
        // copies to exceed capacity.
        let a = solve(&[k(0.2, 0.05), k(0.3, 0.9), k(0.3, 0.9)]);
        // A gets its 0.05 fully (max-min), so it runs at full rate.
        assert!((a[0].rate - 1.0).abs() < 1e-9, "rate was {}", a[0].rate);
        // B kernels split the residual 0.95/2 each -> rate ≈ 0.475/0.9.
        let expected = (0.95 / 2.0) / 0.9;
        assert!((a[1].rate - expected).abs() < 1e-6);
        assert!((a[2].rate - expected).abs() < 1e-6);
    }

    #[test]
    fn total_shares_never_exceed_capacity() {
        let kernels: Vec<KernelSpec> = (0..6).map(|_| k(0.5, 0.4)).collect();
        let a = solve(&kernels);
        let total_sm: f64 = a.iter().map(|x| x.sm_share).sum();
        let total_bw: f64 = a.iter().map(|x| x.bw_share).sum();
        assert!(total_sm <= 1.0 + 1e-9, "sm {total_sm}");
        assert!(total_bw <= 1.0 + 1e-9, "bw {total_bw}");
    }

    #[test]
    fn partition_caps_rate_for_small_partitions() {
        let solver = ContentionSolver::new(dev(), 0.0);
        let kernel = k(0.9, 0.0);
        let a = solver.solve(&[Contender {
            kernel: &kernel,
            partition: Fraction::new(0.25),
        }]);
        // Linear-scaling kernel at 25% partition: rate ≈ 0.25.
        assert!((a[0].rate - 0.25).abs() < 0.01, "rate {}", a[0].rate);
    }

    #[test]
    fn cache_sensitivity_slows_victim_under_pressure() {
        let victim = k(0.2, 0.1).with_cache_sensitivity(1.0);
        let aggressor = k(0.2, 0.5);
        let solo = solve(std::slice::from_ref(&victim));
        let shared = solve(&[victim.clone(), aggressor]);
        assert!((solo[0].rate - 1.0).abs() < 1e-9);
        // Pressure ≈ 0.5 -> slowdown ≈ 1.5.
        assert!(
            shared[0].rate < 0.72 && shared[0].rate > 0.6,
            "rate {}",
            shared[0].rate
        );
    }

    #[test]
    fn sharing_overhead_scales_with_corunner_count() {
        let solver = ContentionSolver::new(dev(), 0.01);
        let kernel = k(0.05, 0.0);
        let rate_of = |n: usize| {
            let kernels: Vec<KernelSpec> = (0..n).map(|_| kernel.clone()).collect();
            let contenders: Vec<Contender<'_>> = kernels
                .iter()
                .map(|kernel| Contender {
                    kernel,
                    partition: Fraction::ONE,
                })
                .collect();
            solver.solve(&contenders)[0].rate
        };
        let r1 = rate_of(1);
        let r4 = rate_of(4);
        let r16 = rate_of(16);
        assert!((r1 - 1.0).abs() < 1e-9);
        assert!(r4 < r1 && r16 < r4);
        assert!((r4 - 1.0 / 1.03).abs() < 1e-9);
    }

    #[test]
    fn dyn_power_reflects_shares_and_scale() {
        let kernel = k(0.5, 0.2).with_power_scale(2.0);
        let a = solve(std::slice::from_ref(&kernel));
        let d = dev();
        let expected = 2.0 * (d.power_per_sm_pct * 50.0 + d.power_per_bw_pct * 20.0);
        assert!((a[0].dyn_power_watts - expected).abs() < 1e-9);
    }

    #[test]
    fn max_min_share_under_capacity_grants_everything() {
        let g = max_min_share(&[0.2, 0.3], 1.0);
        assert_eq!(g, vec![0.2, 0.3]);
    }

    #[test]
    fn max_min_share_protects_small_demands() {
        let g = max_min_share(&[0.1, 0.9, 0.9], 1.0);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[1] - 0.45).abs() < 1e-12);
        assert!((g[2] - 0.45).abs() < 1e-12);
    }

    #[test]
    fn max_min_share_equal_demands_split_evenly() {
        let g = max_min_share(&[0.8, 0.8, 0.8, 0.8], 1.0);
        for x in g {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn max_min_share_total_equals_capacity_when_oversubscribed() {
        let g = max_min_share(&[0.5, 0.7, 0.2, 0.9], 1.0);
        let total: f64 = g.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        for (gi, wi) in g.iter().zip([0.5, 0.7, 0.2, 0.9]) {
            assert!(*gi <= wi + 1e-12);
        }
    }
}
