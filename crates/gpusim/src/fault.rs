//! Deterministic fault injection.
//!
//! A [`FaultPlan`] lists fatal client faults to inject into an engine run:
//! each [`FaultSpec`] aborts its target at a simulated time. The scope
//! encodes the *failure domain*: a [`FaultScope::Client`] fault kills only
//! the faulting client (time-slicing, sequential, a MIG instance's
//! neighbour), while a [`FaultScope::Domain`] fault models the documented
//! MPS semantics — a fatal client fault brings down the shared server, and
//! every unfinished sibling dies with it. The mechanism layer
//! (`mpshare-mps`) widens client faults to domain faults for shared-server
//! mechanisms; the engine itself just executes whatever scope it is given.
//!
//! Everything is seeded and pure: [`FaultPlan::seeded`] derives per-client
//! Bernoulli draws and fault times from a splitmix64 stream keyed only by
//! `(seed, client)`, so plans are bit-identical across worker counts, and
//! an empty plan leaves the engine's behaviour untouched.

use mpshare_types::{Error, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Which clients a fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// The fault is contained to the originating client.
    Client(usize),
    /// The fault originates at the given client but the failure domain is
    /// shared (one MPS server / one fused process): every unfinished
    /// resident client is aborted with it. A no-op if the origin already
    /// terminated — an exited process cannot crash the server.
    Domain(usize),
}

impl FaultScope {
    /// The client whose fatal fault this is.
    pub fn origin(self) -> usize {
        match self {
            FaultScope::Client(i) | FaultScope::Domain(i) => i,
        }
    }

    /// Deterministic tiebreak key for faults injected at the same instant.
    fn sort_key(self) -> (usize, u8) {
        match self {
            FaultScope::Client(i) => (i, 0),
            FaultScope::Domain(i) => (i, 1),
        }
    }
}

/// One injected fault: the origin client dies fatally at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    pub at: Seconds,
    pub scope: FaultScope,
}

/// Record of a fault that actually fired during a run (a planned fault
/// whose origin had already finished is skipped, not recorded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    pub at: Seconds,
    /// Client whose fatal fault triggered the abort.
    pub origin: usize,
    /// Clients aborted, the origin included (1 unless the failure domain
    /// is shared).
    pub victims: usize,
}

/// A set of faults to inject into one engine run. Times are relative to
/// the run's own clock (the engine starts at t = 0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    pub fn push(&mut self, spec: FaultSpec) {
        self.faults.push(spec);
    }

    /// Adds a contained fault: client `client` dies at `at`.
    pub fn push_client_fault(&mut self, at: Seconds, client: usize) {
        self.push(FaultSpec {
            at,
            scope: FaultScope::Client(client),
        });
    }

    /// Adds a shared-domain fault originating at `client`.
    pub fn push_domain_fault(&mut self, at: Seconds, client: usize) {
        self.push(FaultSpec {
            at,
            scope: FaultScope::Domain(client),
        });
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// The faults sorted by injection time (ties broken by origin), the
    /// order the engine consumes them in.
    pub fn sorted(&self) -> Vec<FaultSpec> {
        let mut sorted = self.faults.clone();
        sorted.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("finite fault times")
                .then_with(|| a.scope.sort_key().cmp(&b.scope.sort_key()))
        });
        sorted
    }

    /// Draws per-client faults: client `i` faults with probability
    /// `fault_rate`, at a time uniform in `[0, horizons[i])`. The draws
    /// come from a splitmix64 stream keyed by `(seed, i)` only, so the
    /// plan is a pure function of its arguments — bit-identical no matter
    /// how many workers evaluate it.
    pub fn seeded(seed: u64, horizons: &[Seconds], fault_rate: f64) -> Result<Self> {
        if !fault_rate.is_finite() || !(0.0..=1.0).contains(&fault_rate) {
            return Err(Error::InvalidConfig(format!(
                "fault rate must be in [0, 1], got {fault_rate}"
            )));
        }
        let mut plan = FaultPlan::new();
        for (i, horizon) in horizons.iter().enumerate() {
            if unit_hash(seed, &[i as u64, 0]) < fault_rate {
                let frac = unit_hash(seed, &[i as u64, 1]);
                plan.push_client_fault(Seconds::new(frac * horizon.value()), i);
            }
        }
        Ok(plan)
    }

    /// Widens every contained fault to the shared failure domain — what a
    /// fatal client fault means under one MPS server or one fused
    /// streams process.
    pub fn widen_to_domain(&self) -> FaultPlan {
        FaultPlan {
            faults: self
                .faults
                .iter()
                .map(|f| FaultSpec {
                    at: f.at,
                    scope: FaultScope::Domain(f.scope.origin()),
                })
                .collect(),
        }
    }

    /// Restricts the plan to faults originating at `members`, remapping
    /// origins to positions within `members` — the plan a MIG instance's
    /// engine sees for its own clients.
    pub fn restrict(&self, members: &[usize]) -> FaultPlan {
        FaultPlan {
            faults: self
                .faults
                .iter()
                .filter_map(|f| {
                    let local = members.iter().position(|&m| m == f.scope.origin())?;
                    Some(FaultSpec {
                        at: f.at,
                        scope: match f.scope {
                            FaultScope::Client(_) => FaultScope::Client(local),
                            FaultScope::Domain(_) => FaultScope::Domain(local),
                        },
                    })
                })
                .collect(),
        }
    }
}

/// A uniform draw in `[0, 1)` from a splitmix64 stream keyed by `seed` and
/// `lanes`. Pure and order-free: the same key yields the same draw on any
/// worker, which is what keeps seeded fault runs bit-identical across
/// serial and parallel execution.
pub fn unit_hash(seed: u64, lanes: &[u64]) -> f64 {
    let mut state = seed;
    for &lane in lanes {
        state = splitmix64(state ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let horizons = vec![Seconds::new(10.0); 16];
        let a = FaultPlan::seeded(42, &horizons, 0.5).unwrap();
        let b = FaultPlan::seeded(42, &horizons, 0.5).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, &horizons, 0.5).unwrap();
        assert_ne!(a, c, "different seeds must differ for 16 clients at p=0.5");
    }

    #[test]
    fn seeded_rate_extremes() {
        let horizons = vec![Seconds::new(5.0); 8];
        assert!(FaultPlan::seeded(7, &horizons, 0.0).unwrap().is_empty());
        let all = FaultPlan::seeded(7, &horizons, 1.0).unwrap();
        assert_eq!(all.len(), 8);
        for (i, f) in all.faults().iter().enumerate() {
            assert_eq!(f.scope, FaultScope::Client(i));
            assert!(f.at.value() < 5.0);
        }
    }

    #[test]
    fn seeded_rejects_bad_rates() {
        let horizons = [Seconds::new(1.0)];
        assert!(FaultPlan::seeded(0, &horizons, -0.1).is_err());
        assert!(FaultPlan::seeded(0, &horizons, 1.1).is_err());
        assert!(FaultPlan::seeded(0, &horizons, f64::NAN).is_err());
    }

    #[test]
    fn widen_and_restrict_compose() {
        let mut plan = FaultPlan::new();
        plan.push_client_fault(Seconds::new(1.0), 2);
        plan.push_client_fault(Seconds::new(2.0), 5);
        let wide = plan.widen_to_domain();
        assert_eq!(wide.faults()[0].scope, FaultScope::Domain(2));
        // Restrict to an "instance" holding original clients 5 and 2 (in
        // that order): origins remap to local positions.
        let local = plan.restrict(&[5, 2]);
        assert_eq!(local.len(), 2);
        assert_eq!(local.faults()[0].scope, FaultScope::Client(1));
        assert_eq!(local.faults()[1].scope, FaultScope::Client(0));
        // A member set not containing the origin drops the fault.
        assert!(plan.restrict(&[0, 1]).is_empty());
    }

    #[test]
    fn sorted_orders_by_time_then_origin() {
        let mut plan = FaultPlan::new();
        plan.push_client_fault(Seconds::new(2.0), 0);
        plan.push_client_fault(Seconds::new(1.0), 3);
        plan.push_client_fault(Seconds::new(2.0), 1);
        let sorted = plan.sorted();
        assert_eq!(sorted[0].scope.origin(), 3);
        assert_eq!(sorted[1].scope.origin(), 0);
        assert_eq!(sorted[2].scope.origin(), 1);
    }

    #[test]
    fn unit_hash_is_in_range_and_keyed() {
        for i in 0..1000u64 {
            let x = unit_hash(123, &[i]);
            assert!((0.0..1.0).contains(&x));
        }
        assert_ne!(unit_hash(1, &[2, 3]), unit_hash(1, &[3, 2]));
    }
}
