//! Client programs: what one MPS client executes.
//!
//! A [`ClientProgram`] is the unit the engine schedules — it corresponds to
//! one OS process connected to the MPS server (or one time-slicing
//! participant). A program is an ordered sequence of [`TaskProgram`]s
//! (workflow tasks, e.g. "LAMMPS 4x"); each task is an ordered sequence of
//! kernels separated by host gaps and owns a device-memory footprint that is
//! allocated when the task starts and freed when it ends.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;
use mpshare_types::{Error, MemBytes, Result, Seconds, TaskId};
use serde::{Deserialize, Serialize};

/// One workflow task: a named batch of kernels with a memory footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProgram {
    /// Identifier used to report per-task completion times.
    pub id: TaskId,
    /// Human-readable label (benchmark name + problem size), for reports.
    pub label: String,
    /// Maximum resident device memory of this task. Allocated at task
    /// start; the task blocks until it fits.
    pub memory: MemBytes,
    /// Kernels in launch order.
    pub kernels: Vec<KernelSpec>,
    /// Host-side setup time before the first kernel launches (input
    /// reading, MPI setup, H2D transfers).
    pub setup: Seconds,
}

impl TaskProgram {
    pub fn new(id: TaskId, label: impl Into<String>, memory: MemBytes) -> Self {
        TaskProgram {
            id,
            label: label.into(),
            memory,
            kernels: Vec::new(),
            setup: Seconds::ZERO,
        }
    }

    pub fn with_setup(mut self, setup: Seconds) -> Self {
        self.setup = setup;
        self
    }

    pub fn push_kernel(&mut self, kernel: KernelSpec) -> &mut Self {
        self.kernels.push(kernel);
        self
    }

    /// Appends `count` copies of `kernel`.
    pub fn repeat_kernel(&mut self, kernel: KernelSpec, count: usize) -> &mut Self {
        self.kernels.extend(std::iter::repeat_n(kernel, count));
        self
    }

    /// Total GPU-busy time of the task when run solo at full partition.
    pub fn solo_busy_time(&self) -> Seconds {
        self.kernels.iter().map(|k| k.solo_duration).sum()
    }

    /// Total wall-clock time of the task when run solo at full partition,
    /// including setup and host gaps.
    pub fn solo_wall_time(&self) -> Seconds {
        self.setup
            + self
                .kernels
                .iter()
                .map(|k| k.solo_duration + k.host_gap)
                .sum()
    }

    /// Validates the task against a device: every kernel must be able to
    /// run and the footprint must fit in device memory at all.
    pub fn validate(&self, device: &DeviceSpec) -> Result<()> {
        if self.kernels.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "task {} ({}) has no kernels",
                self.id, self.label
            )));
        }
        if self.memory > device.memory_capacity {
            return Err(Error::InvalidConfig(format!(
                "task {} ({}) needs {} but device has {}",
                self.id, self.label, self.memory, device.memory_capacity
            )));
        }
        for k in &self.kernels {
            k.validate(device)?;
        }
        Ok(())
    }
}

/// The full program of one client process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientProgram {
    /// Human-readable label (workflow description), for reports.
    pub label: String,
    /// Tasks in execution order; task `n+1` starts only after task `n`
    /// completes (workflow data dependencies).
    pub tasks: Vec<TaskProgram>,
    /// Simulated time at which the client process arrives.
    pub arrival: Seconds,
}

impl ClientProgram {
    pub fn new(label: impl Into<String>) -> Self {
        ClientProgram {
            label: label.into(),
            tasks: Vec::new(),
            arrival: Seconds::ZERO,
        }
    }

    pub fn with_arrival(mut self, arrival: Seconds) -> Self {
        self.arrival = arrival;
        self
    }

    pub fn push_task(&mut self, task: TaskProgram) -> &mut Self {
        self.tasks.push(task);
        self
    }

    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Peak memory over the client's lifetime (tasks run one at a time, so
    /// this is the max, not the sum).
    pub fn peak_memory(&self) -> MemBytes {
        self.tasks
            .iter()
            .map(|t| t.memory)
            .max()
            .unwrap_or(MemBytes::ZERO)
    }

    /// Sum of solo wall-clock times of all tasks — what sequential
    /// execution of this client alone would take.
    pub fn solo_wall_time(&self) -> Seconds {
        self.tasks.iter().map(|t| t.solo_wall_time()).sum()
    }

    pub fn validate(&self, device: &DeviceSpec) -> Result<()> {
        if self.tasks.is_empty() {
            return Err(Error::InvalidConfig(format!(
                "client program {:?} has no tasks",
                self.label
            )));
        }
        for t in &self.tasks {
            t.validate(device)?;
        }
        Ok(())
    }
}

/// A client roster validated once against a specific device.
///
/// Program validation walks every kernel (occupancy limits, coefficient
/// sanity), which is the dominant cost of engine construction for large
/// rosters — and it is pure: the verdict depends only on the programs and
/// the device, both immutable. A steady-state driver that re-runs the
/// same roster (benchmark replay, scenario sweeps, the recycled-scratch
/// loop) should validate once, then construct engines with
/// [`crate::engine::Engine::new_prevalidated`] and take the roster back
/// from [`crate::engine::Engine::run_recycling`] — no re-validation, no
/// per-run clone.
#[derive(Debug, Clone)]
pub struct ValidatedPrograms {
    programs: Vec<ClientProgram>,
    device: DeviceSpec,
}

impl ValidatedPrograms {
    /// Validates every program against `device` and seals the roster.
    pub fn new(device: &DeviceSpec, programs: Vec<ClientProgram>) -> Result<Self> {
        let device = device.clone().validated()?;
        for p in &programs {
            p.validate(&device)?;
        }
        Ok(ValidatedPrograms { programs, device })
    }

    /// Reseals a roster the engine already validated at construction time
    /// (every `Engine` holds programs validated against its device).
    pub(crate) fn sealed(device: DeviceSpec, programs: Vec<ClientProgram>) -> Self {
        ValidatedPrograms { programs, device }
    }

    /// The device the roster was validated against.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    pub fn programs(&self) -> &[ClientProgram] {
        &self.programs
    }

    pub fn len(&self) -> usize {
        self.programs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Unseals the roster (e.g. to mutate it before re-validating).
    pub fn into_inner(self) -> Vec<ClientProgram> {
        self.programs
    }

    pub(crate) fn into_parts(self) -> (DeviceSpec, Vec<ClientProgram>) {
        (self.device, self.programs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchConfig;
    use mpshare_types::Fraction;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn kernel(dur: f64, gap: f64) -> KernelSpec {
        KernelSpec::from_launch(&dev(), LaunchConfig::dense(216, 1024), Seconds::new(dur))
            .with_host_gap(Seconds::new(gap))
            .with_sm_demand(Fraction::new(0.5))
    }

    fn task(id: u64, n_kernels: usize) -> TaskProgram {
        let mut t = TaskProgram::new(
            TaskId::new(id),
            format!("task-{id}"),
            MemBytes::from_mib(512),
        )
        .with_setup(Seconds::new(1.0));
        t.repeat_kernel(kernel(2.0, 0.5), n_kernels);
        t
    }

    #[test]
    fn solo_times_add_up() {
        let t = task(0, 3);
        assert_eq!(t.solo_busy_time().value(), 6.0);
        assert_eq!(t.solo_wall_time().value(), 1.0 + 3.0 * 2.5);
    }

    #[test]
    fn client_peak_memory_is_max_not_sum() {
        let mut c = ClientProgram::new("wf");
        let mut t1 = task(0, 1);
        t1.memory = MemBytes::from_mib(100);
        let mut t2 = task(1, 1);
        t2.memory = MemBytes::from_mib(700);
        c.push_task(t1).push_task(t2);
        assert_eq!(c.peak_memory(), MemBytes::from_mib(700));
    }

    #[test]
    fn client_solo_wall_time_sums_tasks() {
        let mut c = ClientProgram::new("wf");
        c.push_task(task(0, 2)).push_task(task(1, 2));
        assert_eq!(c.solo_wall_time().value(), 2.0 * (1.0 + 2.0 * 2.5));
    }

    #[test]
    fn validation_rejects_empty_and_oversized() {
        let d = dev();
        assert!(ClientProgram::new("empty").validate(&d).is_err());

        let mut t = task(0, 1);
        t.memory = MemBytes::from_gib(100);
        assert!(t.validate(&d).is_err());

        let t_empty = TaskProgram::new(TaskId::new(9), "no-kernels", MemBytes::ZERO);
        assert!(t_empty.validate(&d).is_err());

        let mut c = ClientProgram::new("ok");
        c.push_task(task(0, 1));
        c.validate(&d).unwrap();
    }

    #[test]
    fn repeat_kernel_appends_copies() {
        let t = task(0, 5);
        assert_eq!(t.kernels.len(), 5);
    }
}
