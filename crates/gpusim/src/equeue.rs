//! Indexed monotone event queue for statically-known event times.
//!
//! The engine's `advance` used to rescan every client on every event to find
//! the next pending arrival. Arrival times are known up front and simulated
//! time only moves forward, so the scan can be replaced by a sorted queue —
//! conceptually a binary min-heap keyed by `(time, client)`, flattened to a
//! sorted array at construction since no entries are ever pushed later — with
//! two monotone cursors:
//!
//! * the **armed** cursor pops each entry exactly once, as soon as its time
//!   falls within the engine's epsilon window of `now`, to re-arm transition
//!   processing for that client;
//! * the **horizon** cursor skips entries that can no longer bound the next
//!   event (their time has passed, or the caller reports the client expired)
//!   and yields the earliest surviving time.
//!
//! Both cursors only advance (times are popped in the exact order the old
//! linear scan would have selected them), so the whole run costs O(n log n)
//! for the initial sort plus O(1) amortized per event, instead of O(n) per
//! event.
//!
//! Entries with non-finite times are rejected at construction; the engine
//! validates arrival times before reaching this point.

/// Sorted once at construction; `armed`/`horizon` are monotone cursors.
#[derive(Debug, Clone)]
pub(crate) struct MonotoneEventQueue {
    /// `(time, client)` pairs in ascending `(time, client)` order — the pop
    /// order of a binary min-heap with the client index as tie-break seq.
    entries: Vec<(f64, usize)>,
    armed: usize,
    horizon: usize,
    /// Last deadline passed to [`MonotoneEventQueue::pop_armed`], for the
    /// monotonicity check: a decreasing deadline would silently skip
    /// events (the armed cursor never rewinds), so it is asserted rather
    /// than just documented. Same check as [`crate::heap::TickHeap::pop`].
    last_deadline: f64,
}

impl MonotoneEventQueue {
    /// Builds the queue from `(time, client)` pairs. Panics on non-finite
    /// times: they cannot be ordered and the engine never produces them.
    pub(crate) fn new(times: impl IntoIterator<Item = (f64, usize)>) -> Self {
        let mut entries: Vec<(f64, usize)> = times.into_iter().collect();
        assert!(
            entries.iter().all(|(t, _)| t.is_finite()),
            "event queue times must be finite"
        );
        entries.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite times are totally ordered")
                .then(a.1.cmp(&b.1))
        });
        Self {
            entries,
            armed: 0,
            horizon: 0,
            last_deadline: f64::NEG_INFINITY,
        }
    }

    /// Pops the next entry whose time is `<= deadline`, if any. Each entry is
    /// delivered exactly once; `deadline` must be non-decreasing across calls
    /// (simulated now + epsilon), which keeps the cursor monotone. The
    /// requirement is checked, not just documented: a violation would
    /// silently skip events whose time fell between the two deadlines.
    pub(crate) fn pop_armed(&mut self, deadline: f64) -> Option<usize> {
        debug_assert!(
            deadline >= self.last_deadline,
            "pop_armed deadline went backwards: {deadline} after {}",
            self.last_deadline
        );
        self.last_deadline = deadline;
        let &(t, client) = self.entries.get(self.armed)?;
        if t <= deadline {
            self.armed += 1;
            Some(client)
        } else {
            None
        }
    }

    /// Earliest entry time strictly after `now` whose client is not expired.
    /// `expired` must be permanent (once true for a client, true forever) —
    /// skipped entries are never revisited.
    pub(crate) fn next_horizon(
        &mut self,
        now: f64,
        mut expired: impl FnMut(usize) -> bool,
    ) -> Option<f64> {
        while let Some(&(t, client)) = self.entries.get(self.horizon) {
            if t <= now || expired(client) {
                self.horizon += 1;
                continue;
            }
            return Some(t);
        }
        None
    }

    /// Entries the horizon cursor has not yet consumed (pending future
    /// events) — used for queue-depth accounting.
    pub(crate) fn pending(&self) -> usize {
        self.entries.len() - self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_index_order() {
        let mut q = MonotoneEventQueue::new(vec![(2.0, 1), (1.0, 5), (2.0, 0), (0.5, 3)]);
        assert_eq!(q.pop_armed(2.5), Some(3));
        assert_eq!(q.pop_armed(2.5), Some(5));
        assert_eq!(q.pop_armed(2.5), Some(0));
        assert_eq!(q.pop_armed(2.5), Some(1));
        assert_eq!(q.pop_armed(100.0), None);
    }

    #[test]
    fn pop_respects_deadline() {
        let mut q = MonotoneEventQueue::new(vec![(1.0, 0), (2.0, 1)]);
        assert_eq!(q.pop_armed(0.5), None);
        assert_eq!(q.pop_armed(1.0), Some(0));
        assert_eq!(q.pop_armed(1.5), None);
        assert_eq!(q.pop_armed(2.0), Some(1));
    }

    #[test]
    fn horizon_skips_expired_and_past() {
        let mut q = MonotoneEventQueue::new(vec![(1.0, 0), (2.0, 1), (3.0, 2)]);
        assert_eq!(q.pending(), 3);
        // Client 1 expired: skipped permanently even though its time is future.
        assert_eq!(q.next_horizon(1.0, |c| c == 1), Some(3.0));
        assert_eq!(q.pending(), 1);
        // Skips are permanent: client 1 never reappears.
        assert_eq!(q.next_horizon(1.0, |_| false), Some(3.0));
        assert_eq!(q.next_horizon(3.0, |_| false), None);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn empty_queue() {
        let mut q = MonotoneEventQueue::new(vec![]);
        assert_eq!(q.pop_armed(f64::MAX), None);
        assert_eq!(q.next_horizon(0.0, |_| false), None);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_times() {
        MonotoneEventQueue::new(vec![(f64::NAN, 0)]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "deadline went backwards")]
    fn decreasing_deadline_is_asserted() {
        let mut q = MonotoneEventQueue::new(vec![(1.0, 0), (2.0, 1)]);
        assert_eq!(q.pop_armed(1.5), Some(0));
        // A rewound deadline would silently skip any entry between the two
        // deadlines; the monotonicity debug_assert must catch it.
        q.pop_armed(0.5);
    }

    #[test]
    fn repeated_equal_deadlines_are_monotone() {
        // The engine calls pop_armed with `now + EPS` in a drain loop, so
        // the same deadline repeats; equal deadlines must satisfy the
        // monotonicity check and drain every due entry.
        let mut q = MonotoneEventQueue::new(vec![(1.0, 0), (1.0, 1), (1.0, 2)]);
        assert_eq!(q.pop_armed(1.0), Some(0));
        assert_eq!(q.pop_armed(1.0), Some(1));
        assert_eq!(q.pop_armed(1.0), Some(2));
        assert_eq!(q.pop_armed(1.0), None);
    }

    /// Drains a queue through an interleaved pop/horizon schedule derived
    /// from the entry times themselves, recording every observable output.
    /// Clients `>= expire_above` are reported expired to the horizon
    /// cursor, exercising the skip path.
    fn observable_drain(
        entries: &[(f64, usize)],
        expire_above: usize,
    ) -> Vec<(Option<usize>, Option<f64>, usize)> {
        let mut q = MonotoneEventQueue::new(entries.iter().copied());
        // Ascending (with duplicates) — every drain schedule below runs
        // under the pop_armed monotonicity assertion, so the property test
        // also proves the engine-shaped deadline stream satisfies it.
        let mut deadlines: Vec<f64> = entries.iter().map(|&(t, _)| t).collect();
        deadlines.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut out = Vec::new();
        for &d in &deadlines {
            loop {
                let popped = q.pop_armed(d);
                let horizon = q.next_horizon(d, |c| c >= expire_above);
                out.push((popped, horizon, q.pending()));
                if popped.is_none() {
                    break;
                }
            }
        }
        // Final drain at the max deadline: everything left must pop, in
        // (time, client) order, regardless of the insertion permutation.
        while let Some(c) = q.pop_armed(f64::MAX) {
            out.push((Some(c), None, q.pending()));
        }
        out
    }

    /// Permuting the insertion order of entries — including exact
    /// duplicates of the same `(time, client)` pair and distinct clients
    /// tied at the same time — must not change any observable output:
    /// pop order, horizons, or pending counts. The engine feeds arrivals
    /// in client-iteration order, so this is the property that keeps a
    /// `RunResult` independent of how the arrival list was assembled.
    #[test]
    fn insertion_order_of_tied_entries_is_irrelevant() {
        // Multiset with duplicated pairs and cross-client time ties.
        let base = vec![
            (1.0, 2),
            (1.0, 2), // exact duplicate
            (1.0, 0),
            (1.0, 7), // tied time, distinct clients
            (0.5, 3),
            (0.5, 3), // duplicate again
            (2.0, 1),
            (2.0, 1),
            (2.0, 4),
            (0.0, 5),
        ];
        for expire_above in [usize::MAX, 4] {
            let reference = observable_drain(&base, expire_above);
            // Seeded Fisher-Yates shuffles via the same splitmix64 stream
            // the fault plans use: reproducible, no external RNG.
            for seed in 0..64u64 {
                let mut permuted = base.clone();
                for i in (1..permuted.len()).rev() {
                    let draw = crate::fault::unit_hash(seed, &[i as u64]);
                    let j = (draw * (i + 1) as f64) as usize;
                    permuted.swap(i, j.min(i));
                }
                assert_eq!(
                    observable_drain(&permuted, expire_above),
                    reference,
                    "drain diverged for seed {seed}, expire_above {expire_above}"
                );
            }
            // Reversal and rotation, for non-random adversarial orders.
            let mut reversed = base.clone();
            reversed.reverse();
            assert_eq!(observable_drain(&reversed, expire_above), reference);
            let mut rotated = base.clone();
            rotated.rotate_left(3);
            assert_eq!(observable_drain(&rotated, expire_above), reference);
        }
    }
}
