//! Board power model and software power capping (DVFS).
//!
//! Power is modeled as `P = P_idle + Σ_k dyn_k`, where each resident
//! kernel's dynamic contribution is linear in its consumed SM-throughput
//! and bandwidth shares (coefficients fitted to the paper's Table II; see
//! [`crate::device::DeviceSpec::a100x`]).
//!
//! **Software power capping** (paper §V-C): when the uncapped draw exceeds
//! the device's cap (300 W on the A100X), the SW power-scaling algorithm
//! reduces the clock below nominal. Dynamic power is proportional to
//! progress rate in this model and progress rate is proportional to clock,
//! so the throttle factor has the closed form
//! `c = (cap − idle) / dynamic_uncapped`, clamped to `(0, 1]`.
//! The engine multiplies every kernel's rate by `c` and accounts the
//! wall-clock time during which `c < 1` — the quantity plotted in the
//! paper's Figure 3.

use crate::device::DeviceSpec;
use mpshare_types::Power;
use serde::{Deserialize, Serialize};

/// Resolved power state for one piecewise-constant segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerState {
    /// Actual board draw after capping.
    pub power: Power,
    /// Clock factor in `(0, 1]`; `< 1` means the SW cap is active.
    pub clock_factor: f64,
    /// Whether the SW power cap throttled the clock in this segment.
    pub capped: bool,
}

/// Stateless power model bound to a device spec.
#[derive(Debug, Clone)]
pub struct PowerModel {
    idle: Power,
    cap: Power,
    mps_peak_factor: f64,
}

impl PowerModel {
    pub fn new(device: &DeviceSpec) -> Self {
        PowerModel {
            idle: device.idle_power,
            cap: device.power_cap,
            mps_peak_factor: device.mps_peak_power_factor,
        }
    }

    pub fn idle_power(&self) -> Power {
        self.idle
    }

    /// Resolves the power state given the total *uncapped* dynamic draw of
    /// all resident kernels (as computed by the contention solver at their
    /// nominal-clock rates) and the number of resident clients.
    ///
    /// With a single client, peaks track the average and capping engages
    /// when `idle + dyn > cap`. With two or more MPS clients, interleaved
    /// instruction mixes produce transient peaks `peak_factor × dyn` above
    /// idle, and the SW power-scaling algorithm reacts to the peaks — so
    /// capping engages earlier, and the *average* draw of a capped segment
    /// sits below the cap by the peak margin.
    pub fn resolve(&self, dyn_uncapped_watts: f64, resident_clients: usize) -> PowerState {
        debug_assert!(
            dyn_uncapped_watts >= 0.0 && dyn_uncapped_watts.is_finite(),
            "dynamic power must be finite and non-negative, got {dyn_uncapped_watts}"
        );
        let kappa = if resident_clients >= 2 {
            self.mps_peak_factor
        } else {
            1.0
        };
        let peak = self.idle.watts() + kappa * dyn_uncapped_watts;
        if peak <= self.cap.watts() || dyn_uncapped_watts == 0.0 {
            PowerState {
                power: Power::from_watts(self.idle.watts() + dyn_uncapped_watts),
                clock_factor: 1.0,
                capped: false,
            }
        } else {
            let headroom = (self.cap.watts() - self.idle.watts()).max(0.0);
            let clock_factor = (headroom / (kappa * dyn_uncapped_watts)).clamp(0.0, 1.0);
            PowerState {
                // Rate ∝ clock, so average dynamic draw is
                // clock_factor × dyn; the *peaks* sit exactly at the cap.
                power: Power::from_watts(self.idle.watts() + clock_factor * dyn_uncapped_watts),
                clock_factor,
                capped: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(&DeviceSpec::a100x())
    }

    #[test]
    fn idle_gpu_draws_idle_power() {
        let s = model().resolve(0.0, 0);
        assert_eq!(s.power.watts(), 75.0);
        assert_eq!(s.clock_factor, 1.0);
        assert!(!s.capped);
    }

    #[test]
    fn below_cap_no_throttling() {
        let s = model().resolve(200.0, 1); // 75 + 200 = 275 < 300
        assert_eq!(s.power.watts(), 275.0);
        assert_eq!(s.clock_factor, 1.0);
        assert!(!s.capped);
    }

    #[test]
    fn at_cap_boundary_no_throttling() {
        let s = model().resolve(225.0, 1); // exactly 300
        assert_eq!(s.power.watts(), 300.0);
        assert!(!s.capped);
    }

    #[test]
    fn above_cap_throttles_to_exactly_cap() {
        let s = model().resolve(450.0, 1); // would be 525 W
        assert_eq!(s.power.watts(), 300.0);
        assert!(s.capped);
        assert!((s.clock_factor - 225.0 / 450.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_oversubscription_throttles_harder() {
        let a = model().resolve(300.0, 1);
        let b = model().resolve(600.0, 1);
        assert!(b.clock_factor < a.clock_factor);
        assert_eq!(a.power, b.power);
    }

    #[test]
    fn capped_dynamic_power_equals_headroom() {
        // Rate ∝ clock, so actual dynamic draw is clock_factor × uncapped;
        // verify the invariant that it equals cap − idle when capped solo.
        let dyn_uncapped = 500.0;
        let s = model().resolve(dyn_uncapped, 1);
        let actual_dyn = s.clock_factor * dyn_uncapped;
        assert!((actual_dyn - 225.0).abs() < 1e-9);
    }

    #[test]
    fn mps_peaks_trigger_capping_below_the_average_cap() {
        // 200 W dynamic: solo average is 275 W (no capping), but with two
        // clients the 1.18x peaks reach 311 W and the cap engages.
        let solo = model().resolve(200.0, 1);
        assert!(!solo.capped);
        let shared = model().resolve(200.0, 2);
        assert!(shared.capped);
        assert!(shared.clock_factor < 1.0);
        // Average power of a capped shared segment sits below the cap by
        // the peak margin.
        assert!(shared.power.watts() < 300.0);
        // The peaks sit exactly at the cap.
        let peak = 75.0 + 1.18 * shared.clock_factor * 200.0;
        assert!((peak - 300.0).abs() < 1e-9, "peak {peak}");
    }

    #[test]
    fn single_client_unaffected_by_peak_factor() {
        let a = model().resolve(220.0, 1);
        assert!(!a.capped);
        assert_eq!(a.power.watts(), 295.0);
    }
}
