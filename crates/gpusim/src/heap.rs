//! Global component tick-heap: a binary min-heap keyed by
//! `(time, component_id)`.
//!
//! The component core (see [`crate::component`]) schedules every
//! component's next internal event through one of these. Entries are
//! totally ordered by `(time, component_id, generation)` — ties at the
//! same time always resolve by component id, so the pop order is a pure
//! function of the *set* of armed entries, never of their push order
//! (pinned by the permutation property test below).
//!
//! Re-arming is handled by **generation-based lazy invalidation**: each
//! component has a monotonically increasing generation, every push tags
//! the entry with the component's current generation, and pops silently
//! discard entries whose generation is stale. This is the
//! `BinaryHeap<EventContainer>` pattern of discrete-event simulators,
//! extended so a component whose horizon moved (e.g. an interconnect that
//! just received a transfer) can be re-armed in O(log n) without a
//! decrease-key primitive.
//!
//! Like [`crate::equeue::MonotoneEventQueue`], popped times must be
//! non-decreasing — simulated time only moves forward. The heap *checks*
//! this (`debug_assert!`) rather than documenting it: a component that
//! arms an event in the past would silently corrupt causality otherwise.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One armed entry: `(time, component, generation)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    time: f64,
    component: usize,
    gen: u64,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on time and id: BinaryHeap is a max-heap, we want the
        // earliest (time, component) out first. Times are validated finite
        // at arm time, so `partial_cmp` cannot fail.
        other
            .time
            .partial_cmp(&self.time)
            .expect("tick times are finite")
            .then(other.component.cmp(&self.component))
            .then(other.gen.cmp(&self.gen))
    }
}

/// Min-heap of component ticks keyed by `(time, component_id)`, with
/// generation-based lazy invalidation and a monotone-pop check.
#[derive(Debug, Default)]
pub struct TickHeap {
    heap: BinaryHeap<HeapEntry>,
    /// Current generation per component; entries with an older generation
    /// are stale and skipped on pop.
    gen: Vec<u64>,
    /// Whether the component's current generation is armed (live in the
    /// heap). Disarmed components have no live entry.
    armed: Vec<bool>,
    /// Count of live (non-stale) entries — the real queue depth.
    live: usize,
    /// Last popped time, for the monotonicity assertion.
    last_pop: f64,
}

impl TickHeap {
    /// A heap sized for `components` components (capacity only; arming is
    /// explicit).
    pub fn new(components: usize) -> Self {
        TickHeap {
            heap: BinaryHeap::with_capacity(components.max(1)),
            gen: vec![0; components],
            armed: vec![false; components],
            live: 0,
            last_pop: f64::NEG_INFINITY,
        }
    }

    /// Arms (or re-arms) `component` to tick at absolute time `time`. Any
    /// previously armed entry for the component becomes stale.
    pub fn arm(&mut self, component: usize, time: f64) {
        assert!(time.is_finite(), "tick times must be finite, got {time}");
        debug_assert!(
            component < self.gen.len(),
            "component {component} out of range"
        );
        if !self.armed[component] {
            self.armed[component] = true;
            self.live += 1;
        }
        self.gen[component] += 1;
        self.heap.push(HeapEntry {
            time,
            component,
            gen: self.gen[component],
        });
    }

    /// Disarms `component`: its live entry (if any) becomes stale.
    pub fn disarm(&mut self, component: usize) {
        if self.armed[component] {
            self.armed[component] = false;
            self.live -= 1;
            self.gen[component] += 1;
        }
    }

    /// Pops the earliest live `(time, component)` entry. Skips stale
    /// generations. Popped times are checked non-decreasing — a component
    /// arming an event in the simulated past is a causality bug.
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        while let Some(entry) = self.heap.pop() {
            if !self.armed[entry.component] || entry.gen != self.gen[entry.component] {
                continue; // lazily invalidated by a re-arm or disarm
            }
            self.armed[entry.component] = false;
            self.live -= 1;
            debug_assert!(
                entry.time >= self.last_pop,
                "tick-heap pop went backwards: {} after {} (component {})",
                entry.time,
                self.last_pop,
                entry.component
            );
            self.last_pop = entry.time;
            return Some((entry.time, entry.component));
        }
        None
    }

    /// Live (armed, non-stale) entries — the true heap depth.
    pub fn depth(&self) -> usize {
        self.live
    }

    /// Whether `component` currently has a live entry.
    pub fn is_armed(&self, component: usize) -> bool {
        self.armed[component]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_component_order() {
        let mut h = TickHeap::new(4);
        h.arm(2, 1.0);
        h.arm(0, 1.0);
        h.arm(3, 0.5);
        h.arm(1, 2.0);
        assert_eq!(h.depth(), 4);
        assert_eq!(h.pop(), Some((0.5, 3)));
        assert_eq!(h.pop(), Some((1.0, 0)));
        assert_eq!(h.pop(), Some((1.0, 2)));
        assert_eq!(h.pop(), Some((2.0, 1)));
        assert_eq!(h.pop(), None);
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn rearm_invalidates_previous_entry() {
        let mut h = TickHeap::new(2);
        h.arm(0, 5.0);
        h.arm(1, 2.0);
        // Component 0's horizon moved earlier (e.g. a message arrived).
        h.arm(0, 1.0);
        assert_eq!(h.depth(), 2, "stale entries must not count");
        assert_eq!(h.pop(), Some((1.0, 0)));
        assert_eq!(h.pop(), Some((2.0, 1)));
        assert_eq!(h.pop(), None, "the stale (5.0, 0) entry must be skipped");
    }

    #[test]
    fn disarm_removes_component() {
        let mut h = TickHeap::new(2);
        h.arm(0, 1.0);
        h.arm(1, 2.0);
        h.disarm(0);
        assert_eq!(h.depth(), 1);
        assert!(!h.is_armed(0));
        assert_eq!(h.pop(), Some((2.0, 1)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_times() {
        TickHeap::new(1).arm(0, f64::NAN);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "pop went backwards")]
    fn pop_monotonicity_is_asserted() {
        let mut h = TickHeap::new(2);
        h.arm(0, 2.0);
        assert_eq!(h.pop(), Some((2.0, 0)));
        // Arming in the simulated past is a causality bug; the next pop
        // must trip the monotonicity assertion.
        h.arm(1, 1.0);
        h.pop();
    }

    /// Permuting the arm order of entries — including exact time ties
    /// across distinct components — must not change the pop order: the
    /// heap's total key is `(time, component)`, never insertion order.
    /// This is the global-heap half of the execution-order fuzzing
    /// property (ROADMAP item 4); the arrival-queue half lives in
    /// `equeue.rs`.
    #[test]
    fn arm_order_of_tied_entries_is_irrelevant() {
        // (component, time) multiset with heavy time ties.
        let base: Vec<(usize, f64)> = vec![
            (0, 1.0),
            (5, 1.0),
            (2, 1.0),
            (7, 0.5),
            (3, 0.5),
            (1, 2.0),
            (6, 2.0),
            (4, 0.0),
        ];
        let drain = |entries: &[(usize, f64)]| -> Vec<(f64, usize)> {
            let mut h = TickHeap::new(8);
            for &(c, t) in entries {
                h.arm(c, t);
            }
            let mut out = Vec::new();
            while let Some(popped) = h.pop() {
                out.push(popped);
            }
            out
        };
        let reference = drain(&base);
        // Seeded Fisher-Yates shuffles via the shared splitmix64 stream.
        for seed in 0..64u64 {
            let mut permuted = base.clone();
            for i in (1..permuted.len()).rev() {
                let draw = crate::fault::unit_hash(seed, &[i as u64]);
                let j = (draw * (i + 1) as f64) as usize;
                permuted.swap(i, j.min(i));
            }
            assert_eq!(
                drain(&permuted),
                reference,
                "pop order diverged for seed {seed}"
            );
        }
        let mut reversed = base.clone();
        reversed.reverse();
        assert_eq!(drain(&reversed), reference);
        let mut rotated = base;
        rotated.rotate_left(3);
        assert_eq!(drain(&rotated), reference);
    }
}
