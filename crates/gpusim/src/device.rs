//! Device specifications for the simulated GPUs.
//!
//! The default spec models the NVIDIA A100X used in the paper's evaluation:
//! 108 SMs, 64 resident warps per SM, 80 GiB HBM, a 300 W software power
//! cap. Smaller presets are provided for fast unit tests.

use mpshare_types::{Error, MemBytes, Power, Result};
use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name, e.g. `"A100X"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM (64 on Ampere).
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM (32 on Ampere).
    pub max_blocks_per_sm: u32,
    /// Threads per warp (32 on every NVIDIA architecture to date).
    pub warp_size: u32,
    /// Maximum threads per SM (2048 on Ampere).
    pub max_threads_per_sm: u32,
    /// Register file size per SM, in 32-bit registers (65,536 on Ampere).
    pub registers_per_sm: u32,
    /// Register allocation granularity per warp (256 on Ampere).
    pub register_alloc_unit: u32,
    /// Shared memory per SM available to kernels, in bytes (164 KiB usable
    /// on A100).
    pub shared_mem_per_sm: u64,
    /// Shared-memory allocation granularity, in bytes (128 on Ampere).
    pub shared_mem_alloc_unit: u64,
    /// Device memory capacity.
    pub memory_capacity: MemBytes,
    /// Peak device memory bandwidth, bytes per second. Used only as a
    /// normalization constant: kernels express bandwidth demand as a
    /// fraction of this peak.
    pub memory_bandwidth_bytes_per_sec: f64,
    /// Idle (static) board power draw.
    pub idle_power: Power,
    /// Software power cap: above this draw, the SW power-scaling algorithm
    /// throttles the clock (300 W on the A100X).
    pub power_cap: Power,
    /// Dynamic power per percentage point of SM utilization.
    pub power_per_sm_pct: f64,
    /// Dynamic power per percentage point of memory-bandwidth utilization.
    pub power_per_bw_pct: f64,
    /// Peak-over-average power factor when two or more MPS clients are
    /// resident. Interleaved instruction mixes produce transient power
    /// peaks above the utilization-average draw; the SW power-scaling
    /// algorithm reacts to the peaks, so capping can engage under
    /// co-scheduling even when average draw sits below the cap.
    pub mps_peak_power_factor: f64,
    /// Maximum concurrent MPS clients (48 on post-Volta hardware).
    pub max_mps_clients: usize,
    /// Maximum MIG instances (7 on A100-class hardware).
    pub max_mig_instances: u32,
}

impl DeviceSpec {
    /// The NVIDIA A100X-like device used throughout the reproduction.
    ///
    /// The power coefficients are fitted to the paper's Table II: a linear
    /// model `P = idle + a·SM% + b·BW%` with `idle ≈ 75 W`, `a ≈ 1.75 W/%`,
    /// `b ≈ 1.0 W/%` reproduces the reported average power of the profiled
    /// benchmarks to within a few percent (see `mpshare-workloads`'s
    /// calibration tests).
    pub fn a100x() -> Self {
        DeviceSpec {
            name: "A100X".to_string(),
            num_sms: 108,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            warp_size: 32,
            max_threads_per_sm: 2048,
            registers_per_sm: 65_536,
            register_alloc_unit: 256,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_alloc_unit: 128,
            memory_capacity: MemBytes::from_gib(80),
            memory_bandwidth_bytes_per_sec: 1.94e12,
            idle_power: Power::from_watts(75.0),
            power_cap: Power::from_watts(300.0),
            power_per_sm_pct: 1.75,
            power_per_bw_pct: 1.0,
            mps_peak_power_factor: 1.18,
            max_mps_clients: 48,
            max_mig_instances: 7,
        }
    }

    /// An AMD MI250X-like GCD (one of the two dies): 110 CUs, 64-wide
    /// wavefronts, 64 GiB HBM2e per GCD. The paper names AMD architectures
    /// as future work; the occupancy arithmetic carries over with
    /// wavefront-sized "warps" and CU-level residency limits.
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            name: "MI250X-GCD".to_string(),
            num_sms: 110,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 16,
            warp_size: 64,
            max_threads_per_sm: 2048,
            registers_per_sm: 131_072,
            register_alloc_unit: 256,
            shared_mem_per_sm: 64 * 1024,
            shared_mem_alloc_unit: 128,
            memory_capacity: MemBytes::from_gib(64),
            memory_bandwidth_bytes_per_sec: 1.6e12,
            idle_power: Power::from_watts(90.0),
            power_cap: Power::from_watts(280.0),
            power_per_sm_pct: 1.6,
            power_per_bw_pct: 0.9,
            mps_peak_power_factor: 1.15,
            max_mps_clients: 16,
            max_mig_instances: 1, // no MIG equivalent; SR-IOV not modeled
        }
    }

    /// A deliberately tiny GPU for unit tests: 4 SMs, 1 GiB of memory,
    /// generous power headroom. Small numbers make wave quantization and
    /// occupancy limits easy to reason about by hand.
    pub fn tiny() -> Self {
        DeviceSpec {
            name: "TinyGPU".to_string(),
            num_sms: 4,
            max_warps_per_sm: 8,
            max_blocks_per_sm: 4,
            warp_size: 32,
            max_threads_per_sm: 256,
            registers_per_sm: 16_384,
            register_alloc_unit: 256,
            shared_mem_per_sm: 16 * 1024,
            shared_mem_alloc_unit: 128,
            memory_capacity: MemBytes::from_gib(1),
            memory_bandwidth_bytes_per_sec: 1.0e11,
            idle_power: Power::from_watts(10.0),
            power_cap: Power::from_watts(60.0),
            power_per_sm_pct: 0.3,
            power_per_bw_pct: 0.2,
            mps_peak_power_factor: 1.25,
            max_mps_clients: 8,
            max_mig_instances: 2,
        }
    }

    /// Total resident-warp capacity of the device.
    pub fn total_warp_slots(&self) -> u64 {
        self.num_sms as u64 * self.max_warps_per_sm as u64
    }

    /// Validates internal consistency; returns the spec on success so this
    /// can be chained in builders.
    pub fn validated(self) -> Result<Self> {
        if self.num_sms == 0 {
            return Err(Error::InvalidConfig(
                "device must have at least one SM".into(),
            ));
        }
        if self.warp_size == 0 || self.max_warps_per_sm == 0 || self.max_blocks_per_sm == 0 {
            return Err(Error::InvalidConfig(
                "warp size, warps/SM and blocks/SM must be positive".into(),
            ));
        }
        if self.max_threads_per_sm < self.warp_size {
            return Err(Error::InvalidConfig(
                "max threads per SM must fit at least one warp".into(),
            ));
        }
        if self.memory_bandwidth_bytes_per_sec <= 0.0
            || !self.memory_bandwidth_bytes_per_sec.is_finite()
        {
            return Err(Error::InvalidConfig(
                "memory bandwidth must be positive and finite".into(),
            ));
        }
        if self.mps_peak_power_factor < 1.0 || !self.mps_peak_power_factor.is_finite() {
            return Err(Error::InvalidConfig(
                "MPS peak power factor must be ≥ 1".into(),
            ));
        }
        if self.power_cap < self.idle_power {
            return Err(Error::InvalidConfig(
                "power cap below idle power can never be satisfied".into(),
            ));
        }
        if self.max_mps_clients == 0 {
            return Err(Error::InvalidConfig(
                "MPS client limit must be positive".into(),
            ));
        }
        Ok(self)
    }

    /// Derives the sub-device seen by a MIG instance occupying
    /// `slices` out of `total_slices` of the GPU. Compute, memory capacity
    /// and bandwidth all scale with the slice count; per-SM limits are
    /// unchanged (MIG partitions whole GPCs, not SM internals).
    pub fn mig_slice(&self, slices: u32, total_slices: u32) -> Result<DeviceSpec> {
        if slices == 0 || total_slices == 0 || slices > total_slices {
            return Err(Error::InvalidConfig(format!(
                "invalid MIG slice request {slices}/{total_slices}"
            )));
        }
        let frac = slices as f64 / total_slices as f64;
        let mut spec = self.clone();
        spec.name = format!("{}-mig-{slices}g", self.name);
        spec.num_sms = ((self.num_sms as f64 * frac).floor() as u32).max(1);
        spec.memory_capacity = self.memory_capacity.scale(frac);
        spec.memory_bandwidth_bytes_per_sec = self.memory_bandwidth_bytes_per_sec * frac;
        // Power per percentage point scales with the slice: 100 % of a
        // 3/7th slice draws 3/7th of the whole device's dynamic power.
        spec.power_per_sm_pct = self.power_per_sm_pct * frac;
        spec.power_per_bw_pct = self.power_per_bw_pct * frac;
        // Idle power is board-level; attribute it proportionally so that the
        // sum over instances matches the whole device.
        spec.idle_power = self.idle_power * frac;
        spec.power_cap = self.power_cap * frac;
        spec.validated()
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::a100x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100x_matches_published_limits() {
        let d = DeviceSpec::a100x().validated().unwrap();
        assert_eq!(d.num_sms, 108);
        assert_eq!(d.max_warps_per_sm, 64);
        assert_eq!(d.total_warp_slots(), 108 * 64);
        assert_eq!(d.memory_capacity, MemBytes::from_gib(80));
        assert_eq!(d.power_cap.watts(), 300.0);
        assert_eq!(d.max_mps_clients, 48);
    }

    #[test]
    fn tiny_device_is_valid() {
        DeviceSpec::tiny().validated().unwrap();
    }

    #[test]
    fn amd_preset_is_valid_and_wavefront_sized() {
        let d = DeviceSpec::mi250x_gcd().validated().unwrap();
        assert_eq!(d.warp_size, 64);
        assert_eq!(d.total_warp_slots(), 110 * 32);
        assert!(d.memory_capacity < DeviceSpec::a100x().memory_capacity);
    }

    #[test]
    fn validation_rejects_zero_sms() {
        let mut d = DeviceSpec::tiny();
        d.num_sms = 0;
        assert!(d.validated().is_err());
    }

    #[test]
    fn validation_rejects_cap_below_idle() {
        let mut d = DeviceSpec::tiny();
        d.power_cap = Power::from_watts(5.0);
        assert!(d.validated().is_err());
    }

    #[test]
    fn validation_rejects_nonpositive_bandwidth() {
        let mut d = DeviceSpec::tiny();
        d.memory_bandwidth_bytes_per_sec = 0.0;
        assert!(d.validated().is_err());
    }

    #[test]
    fn mig_slice_scales_resources() {
        let d = DeviceSpec::a100x();
        let half = d.mig_slice(3, 7).unwrap();
        assert_eq!(half.num_sms, (108.0_f64 * 3.0 / 7.0).floor() as u32);
        assert!(half.memory_capacity < d.memory_capacity);
        assert!(half.memory_bandwidth_bytes_per_sec < d.memory_bandwidth_bytes_per_sec);
        // Per-SM architecture limits don't change under MIG.
        assert_eq!(half.max_warps_per_sm, d.max_warps_per_sm);
    }

    #[test]
    fn mig_slice_rejects_invalid_requests() {
        let d = DeviceSpec::a100x();
        assert!(d.mig_slice(0, 7).is_err());
        assert!(d.mig_slice(8, 7).is_err());
        assert!(d.mig_slice(1, 0).is_err());
    }

    #[test]
    fn mig_slices_sum_close_to_whole() {
        let d = DeviceSpec::a100x();
        let slices: Vec<_> = (0..7).map(|_| d.mig_slice(1, 7).unwrap()).collect();
        let total_sms: u32 = slices.iter().map(|s| s.num_sms).sum();
        assert!(total_sms <= d.num_sms);
        let total_idle: f64 = slices.iter().map(|s| s.idle_power.watts()).sum();
        assert!((total_idle - d.idle_power.watts()).abs() < 1.0);
    }
}
