//! Piecewise-constant-rate discrete-event execution engine.
//!
//! The engine advances simulated time between *events* (kernel completion,
//! host-gap expiry, client arrival, time-slice quantum expiry). Between
//! events the set of resident kernels is fixed, so the contention solver's
//! rates are constant and the time of the next completion is exact. This
//! makes the simulation deterministic and free of time-stepping error.
//!
//! Three sharing modes are supported, mirroring the paper's §II-B:
//!
//! * [`SharingMode::Mps`] — all clients resident concurrently, each with an
//!   SM partition (active thread percentage). Memory bandwidth, caches and
//!   scheduling hardware are shared (the contention model).
//! * [`SharingMode::TimeSliced`] — the default GPU scheduler: one client's
//!   kernels on the device at a time, rotated with a quantum and a context
//!   switch overhead. Host-side phases (setup, gaps) still overlap, which
//!   is why time-slicing retains *some* benefit over sequential for bursty
//!   workloads.
//! * [`SharingMode::Sequential`] — jobs run strictly one after another in
//!   queue order with no overlap of any kind: the paper's baseline for
//!   both throughput and energy-efficiency comparisons.

use crate::contention::{Allocation, ContentionSolver, PreparedContender, SolveScratch};
use crate::device::DeviceSpec;
use crate::equeue::MonotoneEventQueue;
use crate::events::{Event, EventKind, EventLog};
use crate::fault::{FaultPlan, FaultRecord, FaultScope, FaultSpec};
use crate::power::{PowerModel, PowerState};
use crate::program::{ClientProgram, ValidatedPrograms};
use crate::telemetry::{Segment, Telemetry};
use mpshare_types::{Energy, Error, Fraction, MemBytes, Result, Seconds, TaskId};
use serde::{Deserialize, Serialize};

/// How resident clients share the GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SharingMode {
    /// CUDA MPS: concurrent execution with per-client SM partitions.
    /// `partitions[i]` is client `i`'s active thread percentage as a
    /// fraction; partitions may oversubscribe (sum > 1).
    Mps { partitions: Vec<Fraction> },
    /// Default time-sliced scheduler.
    TimeSliced {
        quantum: Seconds,
        switch_overhead: Seconds,
    },
    /// Strict sequential execution in client order (the paper's baseline).
    Sequential,
    /// CUDA Streams: all "clients" are streams of one fused process. They
    /// execute concurrently with no partitions, share one address space
    /// (no memory protection — but footprints still consume capacity),
    /// and pay no per-client MPS pressure. Resource contention still
    /// applies.
    Streams,
}

impl SharingMode {
    /// MPS with every client at a 100 % partition (the MPS default).
    pub fn mps_uniform(clients: usize) -> SharingMode {
        SharingMode::Mps {
            partitions: vec![Fraction::ONE; clients],
        }
    }

    /// Time slicing with defaults representative of the driver scheduler:
    /// a 2 ms quantum and a 100 µs context-switch penalty.
    pub fn timesliced_default() -> SharingMode {
        SharingMode::TimeSliced {
            quantum: Seconds::from_millis(2.0),
            switch_overhead: Seconds::from_millis(0.1),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub device: DeviceSpec,
    pub mode: SharingMode,
    /// Device-level per-co-runner slowdown (see [`ContentionSolver`]).
    pub sharing_overhead: f64,
    /// Safety valve: abort after this many events (guards against
    /// pathological quantum settings).
    pub max_events: u64,
    /// Record a discrete-event log (task/kernel boundaries, memory
    /// blocking, throttle transitions, context switches). Off by default:
    /// long sweeps don't need it and it costs memory.
    pub record_events: bool,
    /// Faults to inject (empty by default: with no plan installed, every
    /// code path behaves exactly as before).
    pub faults: FaultPlan,
    /// Testing/benchmark hook: disable the incremental contention solver
    /// and re-solve every resident-set change from scratch. Results are
    /// bit-identical either way (that is the incremental solver's
    /// contract); this exists so equivalence tests and the
    /// incremental-vs-full bench pair can exercise both paths.
    pub force_full_resolve: bool,
    /// Testing/equivalence hook: drive the run with the historical direct
    /// `while step()` loop instead of the component core (see
    /// [`crate::component`]). Results are bit-identical either way — the
    /// component core issues the exact same `next_tick`/`tick_to` sequence
    /// through the global heap — and `tests/perf_equivalence.rs` pins that.
    pub legacy_loop: bool,
}

impl EngineConfig {
    pub fn new(device: DeviceSpec, mode: SharingMode) -> Self {
        EngineConfig {
            device,
            mode,
            sharing_overhead: 0.0,
            max_events: 50_000_000,
            record_events: false,
            faults: FaultPlan::default(),
            force_full_resolve: false,
            legacy_loop: false,
        }
    }

    pub fn with_sharing_overhead(mut self, overhead: f64) -> Self {
        self.sharing_overhead = overhead;
        self
    }

    pub fn with_event_log(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// See [`EngineConfig::force_full_resolve`].
    pub fn with_forced_full_resolve(mut self, force: bool) -> Self {
        self.force_full_resolve = force;
        self
    }

    /// See [`EngineConfig::legacy_loop`].
    pub fn with_legacy_loop(mut self, legacy: bool) -> Self {
        self.legacy_loop = legacy;
        self
    }
}

/// Completion record for one workflow task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskCompletion {
    pub task: TaskId,
    pub label: String,
    pub client: usize,
    pub at: Seconds,
}

/// Per-client summary of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientOutcome {
    pub label: String,
    /// When the client's first task began setup.
    pub started: Seconds,
    /// When the client's last task completed (or was aborted).
    pub finished: Seconds,
    /// Integrated GPU progress time (Σ rate·dt over its kernels).
    pub gpu_progress: Seconds,
    pub completions: Vec<TaskCompletion>,
    /// Whether an injected fault aborted this client before completion.
    #[serde(default, skip_serializing_if = "is_false")]
    pub failed: bool,
    /// GPU progress on the task in flight when the client was aborted —
    /// work that produced no completed task.
    #[serde(default, skip_serializing_if = "seconds_is_zero")]
    pub wasted_progress: Seconds,
    /// Dynamic energy attributed to that lost in-flight work.
    #[serde(default, skip_serializing_if = "energy_is_zero")]
    pub wasted_energy: Energy,
    /// Total dynamic energy attributed to this client over the run
    /// (its share of the board's above-idle draw, integrated).
    #[serde(default, skip_serializing_if = "energy_is_zero")]
    pub dyn_energy: Energy,
}

fn is_false(b: &bool) -> bool {
    !*b
}

fn seconds_is_zero(s: &Seconds) -> bool {
    s.value() == 0.0
}

fn energy_is_zero(e: &Energy) -> bool {
    e.joules() == 0.0
}

fn usize_is_zero(n: &usize) -> bool {
    *n == 0
}

fn failures_is_empty(f: &[FaultRecord]) -> bool {
    f.is_empty()
}

/// Result of one engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    pub telemetry: Telemetry,
    pub clients: Vec<ClientOutcome>,
    /// Time of the last completion.
    pub makespan: Seconds,
    pub total_energy: Energy,
    pub tasks_completed: usize,
    /// Injected faults that fired, in firing order. Empty without a
    /// [`FaultPlan`] (or when every planned fault missed its target).
    #[serde(default, skip_serializing_if = "failures_is_empty")]
    pub failures: Vec<FaultRecord>,
    /// Tasks left uncompleted on aborted clients.
    #[serde(default, skip_serializing_if = "usize_is_zero")]
    pub tasks_failed: usize,
    /// GPU progress lost on tasks in flight when their client was aborted.
    #[serde(default, skip_serializing_if = "seconds_is_zero")]
    pub wasted_progress: Seconds,
    /// Dynamic energy attributed to that lost work.
    #[serde(default, skip_serializing_if = "energy_is_zero")]
    pub wasted_energy: Energy,
    /// Discrete-event log; empty unless `EngineConfig::record_events`.
    pub events: EventLog,
    /// Time-sorted `(client, completion)` index pairs, precomputed once at
    /// the end of [`Engine::run`] so [`RunResult::completions`] does not
    /// merge and re-sort on every call. Never serialized (the per-client
    /// lists are authoritative); rebuilt lazily when absent, e.g. after
    /// deserialization or literal construction.
    #[serde(default, skip_serializing_if = "completion_order_skip")]
    pub completion_order: Vec<(usize, usize)>,
}

fn completion_order_skip(_order: &[(usize, usize)]) -> bool {
    true
}

impl RunResult {
    /// Tasks completed per second over the makespan — the raw quantity
    /// behind the paper's throughput metric. Under fault injection only
    /// completed tasks count, so this is also the run's *goodput*.
    pub fn throughput(&self) -> f64 {
        if self.makespan == Seconds::ZERO {
            0.0
        } else {
            self.tasks_completed as f64 / self.makespan.value()
        }
    }

    /// Fraction of all GPU progress that was wasted on aborted in-flight
    /// tasks (per-client `gpu_progress` includes the lost work, so this is
    /// `wasted / total`). Zero for a fault-free run.
    pub fn wasted_fraction(&self) -> f64 {
        let total: f64 = self.clients.iter().map(|c| c.gpu_progress.value()).sum();
        let wasted = self.wasted_progress.value();
        if wasted == 0.0 || total <= 0.0 {
            0.0
        } else {
            wasted / total
        }
    }

    /// Canonical completion order: time, then client, then task id. The
    /// explicit tie-break makes equal-time completions across clients a
    /// pure function of the records themselves — never of flattening or
    /// insertion order (merged multi-instance results flatten in instance
    /// order, which is exactly where the old at-only sort leaked it).
    fn completion_key(c: &TaskCompletion) -> (Seconds, usize, TaskId) {
        (c.at, c.client, c.task)
    }

    /// All task completions across clients, in canonical
    /// `(at, client, task)` order.
    ///
    /// Uses the precomputed [`RunResult::completion_order`] when it is
    /// consistent with the client lists; otherwise falls back to merging
    /// and sorting in place (both paths sort by the same canonical key, so
    /// they produce identical sequences).
    pub fn completions(&self) -> Vec<&TaskCompletion> {
        let total: usize = self.clients.iter().map(|c| c.completions.len()).sum();
        if self.completion_order.len() == total && total > 0 {
            return self
                .completion_order
                .iter()
                .map(|&(c, k)| &self.clients[c].completions[k])
                .collect();
        }
        let mut all: Vec<&TaskCompletion> = self
            .clients
            .iter()
            .flat_map(|c| c.completions.iter())
            .collect();
        all.sort_by(|a, b| {
            Self::completion_key(a)
                .partial_cmp(&Self::completion_key(b))
                .expect("finite times")
        });
        all
    }

    /// (Re)builds [`RunResult::completion_order`] from the per-client
    /// completion lists, in canonical `(at, client, task)` order. Called at
    /// the end of [`Engine::run`] and after multi-instance merges.
    pub fn index_completions(&mut self) {
        let mut order: Vec<(usize, usize)> = self
            .clients
            .iter()
            .enumerate()
            .flat_map(|(c, out)| (0..out.completions.len()).map(move |k| (c, k)))
            .collect();
        order.sort_by(|&(ca, ka), &(cb, kb)| {
            let a = Self::completion_key(&self.clients[ca].completions[ka]);
            let b = Self::completion_key(&self.clients[cb].completions[kb]);
            a.partial_cmp(&b).expect("finite times")
        });
        self.completion_order = order;
    }
}

/// Progress-resolution epsilon: counters within this of zero are complete.
const EPS: f64 = 1e-9;

/// Per-client lifecycle phase. Pure tag — the associated countdowns live
/// in dense arrays ([`ClientColumns::run_rem`] for running kernels, the
/// engine's `timer_rem` for setup/gap timers), so phase dispatch never
/// touches a payload and the hot loops iterate plain `f64` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Process not yet arrived (or not yet eligible under Sequential).
    Pending,
    /// Blocked waiting for device memory for the current task.
    WaitingMemory,
    /// Host-side setup of the current task (countdown in `timer_rem`).
    Setup,
    /// Current kernel resident on the GPU (solo-seconds in `run_rem`).
    Running,
    /// Host-side gap after a kernel (countdown in `timer_rem`).
    Gap,
    /// All tasks finished.
    Done,
    /// Aborted by an injected fault; terminal like `Done`, but the
    /// client's remaining tasks never completed.
    Failed,
}

impl Phase {
    /// Terminal either way: completed all tasks or aborted by a fault.
    #[inline]
    fn is_terminated(self) -> bool {
        matches!(self, Phase::Done | Phase::Failed)
    }
}

/// Placeholder for slots whose client has no kernel resident. Never read:
/// `prepared` is consulted only for clients in `Phase::Running`, and every
/// kernel start overwrites its slot.
const IDLE_PREPARED: PreparedContender = PreparedContender {
    speed_cap: 0.0,
    sm_demand: 0.0,
    bw_demand: 0.0,
    cache_sensitivity: 0.0,
    client_sensitivity: 0.0,
    power_scale: 0.0,
};

/// Structure-of-arrays per-client state (DESIGN.md §11).
///
/// The engine's hot loops (the event-horizon scan, the progress/energy
/// application, the timer decrement) each touch one or two scalar fields
/// of every client per event. Flattening the former per-client struct
/// into dense slot-indexed columns means those loops stream contiguous
/// `f64` arrays instead of striding across ~200-byte records, and the
/// columns are recycled across runs through [`EngineScratch`] so a
/// steady-state [`Engine::step`] allocates nothing (pinned by
/// `tests/alloc_gate.rs`).
#[derive(Debug, Default)]
struct ClientColumns {
    phase: Vec<Phase>,
    task_idx: Vec<usize>,
    kernel_idx: Vec<usize>,
    /// Solo-seconds left of the current kernel (valid while `Running`).
    run_rem: Vec<f64>,
    held_memory: Vec<MemBytes>,
    started: Vec<Option<Seconds>>,
    finished: Vec<Option<Seconds>>,
    /// Integrated GPU progress time (Σ rate·dt over the client's kernels).
    gpu_progress: Vec<f64>,
    /// GPU progress on the current (uncompleted) task; reset when the
    /// task completes, harvested as wasted work on abort.
    task_progress: Vec<f64>,
    /// Dynamic energy attributed to the current task (same lifecycle).
    task_dyn_energy: Vec<f64>,
    /// Total dynamic energy attributed to the client over the run.
    dyn_energy: Vec<f64>,
    /// Wasted work harvested at abort time.
    wasted_progress: Vec<f64>,
    wasted_energy: Vec<f64>,
    failed: Vec<bool>,
    /// Invariant solve inputs of the current kernel, computed once when it
    /// starts (valid only while the client is `Running`).
    prepared: Vec<PreparedContender>,
    completions: Vec<Vec<TaskCompletion>>,
}

impl ClientColumns {
    /// Resets every column to the initial state for `n` clients, keeping
    /// allocated capacity from a previous run.
    fn reset(&mut self, n: usize) {
        self.phase.clear();
        self.phase.resize(n, Phase::Pending);
        self.task_idx.clear();
        self.task_idx.resize(n, 0);
        self.kernel_idx.clear();
        self.kernel_idx.resize(n, 0);
        self.run_rem.clear();
        self.run_rem.resize(n, 0.0);
        self.held_memory.clear();
        self.held_memory.resize(n, MemBytes::ZERO);
        self.started.clear();
        self.started.resize(n, None);
        self.finished.clear();
        self.finished.resize(n, None);
        self.gpu_progress.clear();
        self.gpu_progress.resize(n, 0.0);
        self.task_progress.clear();
        self.task_progress.resize(n, 0.0);
        self.task_dyn_energy.clear();
        self.task_dyn_energy.resize(n, 0.0);
        self.dyn_energy.clear();
        self.dyn_energy.resize(n, 0.0);
        self.wasted_progress.clear();
        self.wasted_progress.resize(n, 0.0);
        self.wasted_energy.clear();
        self.wasted_energy.resize(n, 0.0);
        self.failed.clear();
        self.failed.resize(n, false);
        self.prepared.clear();
        self.prepared.resize(n, IDLE_PREPARED);
        for c in &mut self.completions {
            c.clear();
        }
        self.completions.resize_with(n, Vec::new);
    }
}

/// Reusable engine buffers, recycled across runs.
///
/// [`Engine::new_reusing`] moves these buffers into the engine (clearing
/// and re-sizing them for the new client roster) and
/// [`Engine::run_reusing`] hands them back when the run completes, so a
/// sweep or benchmark that simulates many rosters back to back performs
/// no per-run buffer allocation beyond the results it keeps
/// ([`RunResult`] owns its telemetry, completions and failures). A
/// default-constructed scratch is empty; `Engine::new` is
/// `new_reusing` with one.
#[derive(Debug, Default)]
pub struct EngineScratch {
    cols: ClientColumns,
    memory_waiters: Vec<usize>,
    agenda: Vec<usize>,
    agenda_flag: Vec<bool>,
    pass_scratch: Vec<usize>,
    running_set: Vec<usize>,
    timer_set: Vec<usize>,
    timer_pos: Vec<usize>,
    timer_rem: Vec<f64>,
    solved_scheduled: Vec<usize>,
    solved_rates: Vec<f64>,
    solved_dyn_powers: Vec<f64>,
    prepared_scratch: Vec<PreparedContender>,
    allocations_scratch: Vec<Allocation>,
    solve_scratch: SolveScratch,
    /// Telemetry segment count of the previous run; the next engine
    /// pre-reserves this many so an identical (or smaller) run never
    /// grows the telemetry vector mid-steady-state.
    segments_hint: usize,
}

impl EngineScratch {
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

/// The execution engine. Construct with [`Engine::new`], then [`Engine::run`].
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    solver: ContentionSolver,
    power: PowerModel,
    /// Read-only client programs, indexed like every column.
    programs: Vec<ClientProgram>,
    /// Dense slot-indexed per-client state (SoA; see [`ClientColumns`]).
    cols: ClientColumns,
    free_memory: MemBytes,
    /// FIFO of clients blocked on memory, in blocking order.
    memory_waiters: Vec<usize>,
    now: f64,
    telemetry: Telemetry,
    // Time-slicing state.
    active: Option<usize>,
    quantum_remaining: f64,
    switch_remaining: f64,
    next_rr: usize,
    events: u64,
    log: EventLog,
    was_capped: bool,
    // Hot-path cache (see DESIGN.md §6): the solved rate/power state is
    // keyed by `resident_epoch`, which transitions bump only when the set
    // of resident kernels changes. Pure time advancement (host timers,
    // arrivals, quantum countdowns) reuses the cached solution.
    resident_epoch: u64,
    solved_epoch: u64,
    solved_scheduled: Vec<usize>,
    solved_rates: Vec<f64>,
    solved_sm_util: f64,
    solved_bw_util: f64,
    solved_pstate: PowerState,
    rate_solves: u64,
    prepared_scratch: Vec<PreparedContender>,
    allocations_scratch: Vec<Allocation>,
    solve_scratch: SolveScratch,
    /// Per-slot dynamic power (after clock scaling) matching
    /// `solved_rates`, for per-client energy attribution.
    solved_dyn_powers: Vec<f64>,
    /// Injected faults sorted by time; `next_fault` is the cursor.
    fault_queue: Vec<FaultSpec>,
    next_fault: usize,
    failures: Vec<FaultRecord>,
    // Incremental transition machinery (DESIGN.md §9). `process_transitions`
    // only steps clients on the agenda; everything that can enable a
    // transition (timer expiry, arrival, memory grant, predecessor
    // termination, a client's own previous transition) re-arms the client.
    /// Clients that may have an enabled transition now (sorted per pass).
    agenda: Vec<usize>,
    /// Dedup flags for `agenda` (indexed by client).
    agenda_flag: Vec<bool>,
    /// Reused per-pass buffer for the agenda drain.
    pass_scratch: Vec<usize>,
    /// Ascending indices of clients in `Phase::Running` (all modes).
    running_set: Vec<usize>,
    /// Clients in `Phase::Setup`/`Phase::Gap`, unordered — the min over
    /// timer horizons and the per-client countdowns are order-independent.
    timer_set: Vec<usize>,
    /// Position of each client in `timer_set` (`usize::MAX` when absent).
    timer_pos: Vec<usize>,
    /// Authoritative countdowns for `timer_set` (parallel array). Kept
    /// dense so the per-event min scan and lockstep decrement touch
    /// contiguous memory instead of one record per timer.
    timer_rem: Vec<f64>,
    /// Count of clients in a terminal phase (replaces the per-event
    /// all-clients scan).
    terminated_count: usize,
    /// Sequential mode: first non-terminated client index, advanced on
    /// every termination. `eligible` reduces to `seq_head >= i`.
    seq_head: usize,
    /// Static arrival events, sorted by (time, client).
    arrivals: MonotoneEventQueue,
    /// Resident-set change since the last solve, for the incremental
    /// solver. Anything beyond a single join/leave degrades to `Invalid`
    /// (full re-solve).
    delta: SolveDelta,
    incremental_solves: u64,
    full_solves: u64,
    max_queue_depth: u64,
    /// Time step planned by the last [`Engine::next_tick`], consumed by the
    /// matching [`Engine::tick_to`]. Stored rather than recomputed from the
    /// heap's absolute time so the apply side uses the exact `dt` the plan
    /// derived (a `t - now` round-trip is not bit-identical). NaN = no
    /// outstanding plan.
    planned_dt: f64,
    /// Whether the planned horizon is a time-slice quantum expiry (set by
    /// the plan, consumed by the apply's end-of-step rotation).
    planned_quantum_event: bool,
    /// Component-core counters (zero under the legacy direct loop): global
    /// heap ticks dispatched to this engine and the max heap depth seen.
    component_ticks: u64,
    heap_max_depth: u64,
}

/// Accumulated resident-set membership change between rate solves.
#[derive(Debug, Clone, Copy, PartialEq)]
enum SolveDelta {
    /// No membership change recorded (the cache is fresh).
    None,
    /// Exactly one client joined the scheduled set.
    Join(usize),
    /// Exactly one client left the scheduled set.
    Leave(usize),
    /// Multiple or structural changes (time-slice rotations, drain state):
    /// only a full solve is safe.
    Invalid,
}

/// Hot-path counters from one engine run (see [`Engine::run_with_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Discrete events processed (calls to the time-advancement step).
    pub events: u64,
    /// Contention/power re-solves performed
    /// (`incremental_solves + full_solves`).
    pub rate_solves: u64,
    /// Re-solves satisfied by the incremental single-join/leave fast path
    /// (see [`crate::contention::ContentionSolver::solve_prepared_join_into`]).
    pub incremental_solves: u64,
    /// Re-solves that ran the full pipeline (first solve, multi-client
    /// deltas, time-slice rotations, fast-path bailouts, or
    /// [`EngineConfig::force_full_resolve`]).
    pub full_solves: u64,
    /// Resident-set epoch transitions (kernel starts/finishes, context
    /// switches). The cache guarantees `rate_solves <= resident_changes`:
    /// events that only advance time reuse the previous solution.
    pub resident_changes: u64,
    /// Maximum indexed event-queue depth observed across the run: running
    /// kernels + armed host timers + undelivered arrivals + pending faults.
    pub max_queue_depth: u64,
    /// Global-heap ticks dispatched to this engine by the component core
    /// (zero when the run used [`EngineConfig::legacy_loop`]).
    pub ticks: u64,
    /// Maximum global tick-heap depth observed while this engine ran under
    /// the component core (1 for a solo engine; more in compositions).
    pub heap_max_depth: u64,
}

impl Engine {
    /// Builds an engine for the given client programs. Validates programs
    /// against the device, the partition list length, and the MPS client
    /// limit.
    pub fn new(config: EngineConfig, programs: Vec<ClientProgram>) -> Result<Self> {
        Self::new_reusing(config, programs, EngineScratch::default())
    }

    /// [`Engine::new`] with recycled buffers from a previous run (see
    /// [`EngineScratch`]). Behaviour is bit-identical to a fresh engine:
    /// every buffer is cleared and re-initialized; only capacity survives.
    pub fn new_reusing(
        config: EngineConfig,
        programs: Vec<ClientProgram>,
        scratch: EngineScratch,
    ) -> Result<Self> {
        let device = config.device.clone().validated()?;
        for p in &programs {
            p.validate(&device)?;
        }
        Self::build(config, device, programs, scratch)
    }

    /// [`Engine::new_reusing`] for a roster validated ahead of time (see
    /// [`ValidatedPrograms`]): skips the per-kernel validation walk, which
    /// dominates construction for large rosters. The roster must have been
    /// validated against this config's device — a mismatch is an error, not
    /// a silent trust.
    pub fn new_prevalidated(
        config: EngineConfig,
        roster: ValidatedPrograms,
        scratch: EngineScratch,
    ) -> Result<Self> {
        if *roster.device() != config.device {
            return Err(Error::InvalidConfig(
                "pre-validated roster does not match the engine's device".into(),
            ));
        }
        let (device, programs) = roster.into_parts();
        Self::build(config, device, programs, scratch)
    }

    /// Shared construction tail: mode checks plus state/buffer setup.
    /// `device` is already validated and `programs` already validated
    /// against it.
    fn build(
        config: EngineConfig,
        device: DeviceSpec,
        programs: Vec<ClientProgram>,
        scratch: EngineScratch,
    ) -> Result<Self> {
        match &config.mode {
            SharingMode::Mps { partitions } => {
                if partitions.len() != programs.len() {
                    return Err(Error::InvalidConfig(format!(
                        "{} partitions for {} clients",
                        partitions.len(),
                        programs.len()
                    )));
                }
                if programs.len() > device.max_mps_clients {
                    return Err(Error::ClientLimitExceeded {
                        gpu: mpshare_types::GpuId::new(0),
                        limit: device.max_mps_clients,
                    });
                }
                if partitions.iter().any(|p| p.is_zero()) {
                    return Err(Error::InvalidConfig(
                        "MPS partitions must be non-zero".into(),
                    ));
                }
            }
            SharingMode::TimeSliced { quantum, .. } => {
                if quantum.value() <= 0.0 {
                    return Err(Error::InvalidConfig(
                        "time-slice quantum must be positive".into(),
                    ));
                }
            }
            SharingMode::Sequential | SharingMode::Streams => {}
        }
        let free_memory = device.memory_capacity;
        let log = if config.record_events {
            EventLog::new()
        } else {
            EventLog::with_capacity(0)
        };
        let same_process = matches!(config.mode, SharingMode::Streams);
        let solver = ContentionSolver::new(device.clone(), config.sharing_overhead)
            .with_same_process(same_process);
        let power = PowerModel::new(&device);
        // Pre-solve the empty resident set (epoch 0) so an idle GPU — e.g.
        // before the first arrival — is a cache hit, not a solve.
        let idle_pstate = power.resolve(0.0, 0);
        let fault_queue = config.faults.sorted();
        let n = programs.len();
        let arrivals = MonotoneEventQueue::new(
            programs
                .iter()
                .enumerate()
                .map(|(i, p)| (p.arrival.value(), i)),
        );
        let EngineScratch {
            mut cols,
            mut memory_waiters,
            mut agenda,
            mut agenda_flag,
            mut pass_scratch,
            mut running_set,
            mut timer_set,
            mut timer_pos,
            mut timer_rem,
            mut solved_scheduled,
            mut solved_rates,
            mut solved_dyn_powers,
            mut prepared_scratch,
            mut allocations_scratch,
            mut solve_scratch,
            segments_hint,
        } = scratch;
        // Reset recycled state and pre-size every per-client buffer to the
        // roster, so no steady-state push or sorted insert can ever grow a
        // vector (the zero-allocation contract of `tests/alloc_gate.rs`).
        cols.reset(n);
        memory_waiters.clear();
        memory_waiters.reserve(n);
        // Every client starts Pending, so all are on the initial agenda.
        agenda.clear();
        agenda.extend(0..n);
        agenda_flag.clear();
        agenda_flag.resize(n, true);
        pass_scratch.clear();
        pass_scratch.reserve(n);
        running_set.clear();
        running_set.reserve(n);
        timer_set.clear();
        timer_set.reserve(n);
        timer_pos.clear();
        timer_pos.resize(n, usize::MAX);
        timer_rem.clear();
        timer_rem.reserve(n);
        solved_scheduled.clear();
        solved_scheduled.reserve(n);
        solved_rates.clear();
        solved_rates.reserve(n);
        solved_dyn_powers.clear();
        solved_dyn_powers.reserve(n);
        prepared_scratch.clear();
        prepared_scratch.reserve(n);
        allocations_scratch.clear();
        allocations_scratch.reserve(n);
        // A recycled scratch must not let this engine's first solve extend
        // the previous run's prefix sums.
        solve_scratch.invalidate();
        solve_scratch.reserve(n);
        Ok(Engine {
            config,
            solver,
            power,
            programs,
            cols,
            free_memory,
            memory_waiters,
            now: 0.0,
            telemetry: Telemetry::with_capacity(segments_hint),
            active: None,
            quantum_remaining: 0.0,
            switch_remaining: 0.0,
            next_rr: 0,
            events: 0,
            log,
            was_capped: false,
            resident_epoch: 0,
            solved_epoch: 0,
            solved_scheduled,
            solved_rates,
            solved_sm_util: 0.0,
            solved_bw_util: 0.0,
            solved_pstate: idle_pstate,
            rate_solves: 0,
            prepared_scratch,
            allocations_scratch,
            solve_scratch,
            solved_dyn_powers,
            fault_queue,
            next_fault: 0,
            failures: Vec::new(),
            agenda,
            agenda_flag,
            pass_scratch,
            running_set,
            timer_set,
            timer_pos,
            timer_rem,
            terminated_count: 0,
            seq_head: 0,
            arrivals,
            delta: SolveDelta::None,
            incremental_solves: 0,
            full_solves: 0,
            max_queue_depth: 0,
            planned_dt: f64::NAN,
            planned_quantum_event: false,
            component_ticks: 0,
            heap_max_depth: 0,
        })
    }

    #[inline]
    fn is_running(&self, i: usize) -> bool {
        self.cols.phase[i] == Phase::Running
    }

    /// Marks the resident kernel set (or the GPU's drain state during a
    /// context switch) as changed — the next [`Engine::advance`] must
    /// re-solve rates and power — and folds the membership change into the
    /// pending [`SolveDelta`] for the incremental solver.
    fn note_delta(&mut self, change: SolveDelta) {
        self.resident_epoch += 1;
        self.delta = match self.delta {
            SolveDelta::None => change,
            _ => SolveDelta::Invalid,
        };
    }

    /// Client `i`'s kernel landed on the GPU. In time-sliced mode kernel
    /// starts do not imply scheduling (the `active` pointer decides), so
    /// the delta degrades to `Invalid` there via `try_incremental_*`'s
    /// mode check; recording `Join` is still correct because those paths
    /// refuse it.
    fn bump_epoch_join(&mut self, i: usize) {
        self.note_delta(SolveDelta::Join(i));
    }

    /// Client `i`'s kernel left the GPU.
    fn bump_epoch_leave(&mut self, i: usize) {
        self.note_delta(SolveDelta::Leave(i));
    }

    /// Structural change (time-slice rotation / drain): full solve only.
    fn bump_epoch_invalidate(&mut self) {
        self.note_delta(SolveDelta::Invalid);
    }

    /// Re-arms transition processing for client `i` (idempotent per pass).
    fn push_agenda(&mut self, i: usize) {
        if !self.agenda_flag[i] {
            self.agenda_flag[i] = true;
            self.agenda.push(i);
        }
    }

    /// Sorted-insert into the running-client index.
    fn running_insert(&mut self, i: usize) {
        if let Err(pos) = self.running_set.binary_search(&i) {
            self.running_set.insert(pos, i);
        } else {
            debug_assert!(false, "client {i} already in running set");
        }
    }

    fn running_remove(&mut self, i: usize) {
        if let Ok(pos) = self.running_set.binary_search(&i) {
            self.running_set.remove(pos);
        } else {
            debug_assert!(false, "client {i} not in running set");
        }
    }

    /// Adds client `i` to the host-timer index with the given countdown
    /// (the caller just moved it into `Setup` or `Gap`).
    fn timer_insert(&mut self, i: usize, remaining: f64) {
        debug_assert!(
            matches!(self.cols.phase[i], Phase::Setup | Phase::Gap),
            "client {i} entered timer set without a timer phase"
        );
        if self.timer_pos[i] == usize::MAX {
            self.timer_pos[i] = self.timer_set.len();
            self.timer_set.push(i);
            self.timer_rem.push(remaining);
        } else {
            debug_assert!(false, "client {i} already in timer set");
        }
    }

    /// Removes client `i` from the timer index if present (no-op
    /// otherwise, e.g. aborting a client that was not in Setup/Gap).
    fn timer_remove(&mut self, i: usize) {
        let pos = self.timer_pos[i];
        if pos == usize::MAX {
            return;
        }
        self.timer_set.swap_remove(pos);
        self.timer_rem.swap_remove(pos);
        if pos < self.timer_set.len() {
            self.timer_pos[self.timer_set[pos]] = pos;
        }
        self.timer_pos[i] = usize::MAX;
    }

    /// Bookkeeping when client `i` enters a terminal phase (Done/Failed):
    /// counts it and, under Sequential, advances the queue head and arms
    /// the successor (predecessor termination is what makes it eligible).
    fn on_termination(&mut self) {
        self.terminated_count += 1;
        if matches!(self.config.mode, SharingMode::Sequential) {
            while self.seq_head < self.programs.len()
                && self.cols.phase[self.seq_head].is_terminated()
            {
                self.seq_head += 1;
            }
            if self.seq_head < self.programs.len() {
                let head = self.seq_head;
                self.push_agenda(head);
            }
        }
    }

    fn record(&mut self, client: usize, kind: EventKind) {
        if self.config.record_events {
            self.log.record(Seconds::new(self.now), client, kind);
        }
    }

    /// Runs all clients to completion and returns the result.
    pub fn run(self) -> Result<RunResult> {
        self.run_with_stats().map(|(result, _)| result)
    }

    /// Like [`Engine::run`], but also returns the hot-path counters —
    /// useful for asserting that the rate cache actually skips re-solves.
    ///
    /// By default the run is driven through the component core (the engine
    /// as the sole [`crate::component::Component`] on the global tick
    /// heap); [`EngineConfig::legacy_loop`] selects the historical direct
    /// `while step()` loop instead. Both produce bit-identical results —
    /// pinned by `tests/perf_equivalence.rs`.
    pub fn run_with_stats(mut self) -> Result<(RunResult, EngineStats)> {
        if self.config.legacy_loop {
            while self.step()? {}
        } else {
            let mut core = crate::component::SimCore::new(1);
            {
                let mut comps: [&mut dyn crate::component::Component; 1] = [&mut self];
                core.run(&mut comps)?;
            }
            self.note_heap_max_depth(core.stats().max_heap_depth);
        }
        Ok(self.build_result())
    }

    /// Like [`Engine::run_with_stats`], but also hands the internal
    /// buffers back for the next [`Engine::new_reusing`].
    pub fn run_reusing(self) -> Result<(RunResult, EngineStats, EngineScratch)> {
        let (result, stats, _roster, scratch) = self.run_recycling()?;
        Ok((result, stats, scratch))
    }

    /// Like [`Engine::run_reusing`], but additionally hands back the
    /// (immutable, still-valid) client roster for the next
    /// [`Engine::new_prevalidated`]. The steady-state replay loop —
    /// roster and scratch round-tripping through each run — constructs
    /// engines with no program clone and no re-validation.
    pub fn run_recycling(
        mut self,
    ) -> Result<(RunResult, EngineStats, ValidatedPrograms, EngineScratch)> {
        while self.step()? {}
        let segments_hint = self.telemetry.segments().len();
        let (result, stats) = self.build_result();
        let Engine {
            config,
            programs,
            cols,
            memory_waiters,
            agenda,
            agenda_flag,
            pass_scratch,
            running_set,
            timer_set,
            timer_pos,
            timer_rem,
            solved_scheduled,
            solved_rates,
            solved_dyn_powers,
            prepared_scratch,
            allocations_scratch,
            solve_scratch,
            ..
        } = self;
        // The run never touches `programs` (all mutable state lives in
        // `cols`), so the roster is as valid as it was at construction.
        let roster = ValidatedPrograms::sealed(config.device, programs);
        let scratch = EngineScratch {
            cols,
            memory_waiters,
            agenda,
            agenda_flag,
            pass_scratch,
            running_set,
            timer_set,
            timer_pos,
            timer_rem,
            solved_scheduled,
            solved_rates,
            solved_dyn_powers,
            prepared_scratch,
            allocations_scratch,
            solve_scratch,
            segments_hint,
        };
        Ok((result, stats, roster, scratch))
    }

    /// Advances the simulation by exactly one event: drains every
    /// zero-cost transition at the current time, then (unless all clients
    /// terminated) moves time to the next event horizon. Returns `false`
    /// once every client is terminal. [`Engine::run`] is this in a loop;
    /// it is public so harnesses (the allocation gate, debuggers) can
    /// drive and observe the engine stepwise.
    ///
    /// `step` is exactly the component protocol inlined — one
    /// [`Engine::next_tick`] plan immediately consumed by its
    /// [`Engine::tick_to`] — so driving the engine through the global tick
    /// heap executes the identical operation sequence.
    pub fn step(&mut self) -> Result<bool> {
        match self.next_tick()? {
            None => Ok(false),
            Some(t) => {
                self.tick_to(t)?;
                Ok(true)
            }
        }
    }

    /// Component-protocol plan half (see [`crate::component::Component`]):
    /// drains zero-cost transitions at the current time and, unless every
    /// client is terminal, plans the next event horizon. Returns the
    /// absolute time of the engine's next internal event, or `None` when
    /// the run is complete. The matching [`Engine::tick_to`] must be called
    /// (with the returned time) before the next `next_tick`.
    pub fn next_tick(&mut self) -> Result<Option<f64>> {
        debug_assert!(
            self.planned_dt.is_nan(),
            "next_tick called with an unconsumed plan"
        );
        self.process_transitions()?;
        if self.terminated_count == self.programs.len() {
            return Ok(None);
        }
        self.events += 1;
        if self.events > self.config.max_events {
            return Err(Error::Stalled {
                at_seconds: self.now,
                detail: format!("exceeded {} events", self.config.max_events),
            });
        }
        let dt = self.plan_advance()?;
        self.planned_dt = dt;
        Ok(Some(self.now + dt))
    }

    /// Component-protocol apply half: advances simulated time to `now` (the
    /// horizon the preceding [`Engine::next_tick`] returned), integrating
    /// telemetry, progress, energy and countdowns over the planned step.
    pub fn tick_to(&mut self, now: f64) -> Result<()> {
        let dt = self.planned_dt;
        debug_assert!(!dt.is_nan(), "tick_to without a preceding next_tick plan");
        debug_assert!(
            now == self.now + dt,
            "tick_to horizon {now} does not match the planned {}",
            self.now + dt
        );
        self.planned_dt = f64::NAN;
        self.apply_advance(dt)
    }

    /// Count of heap ticks dispatched to this engine when driven through
    /// the component core (zero under the legacy direct loop).
    pub fn note_component_tick(&mut self) {
        self.component_ticks += 1;
    }

    /// Folds an observed global-heap depth into the run's stats (called by
    /// whoever drives the engine through a [`crate::component::SimCore`]).
    pub fn note_heap_max_depth(&mut self, depth: u64) {
        self.heap_max_depth = self.heap_max_depth.max(depth);
    }

    /// Task completions recorded so far across all clients — the outbox
    /// source for component compositions (a GPU component emits one
    /// interconnect transfer per newly completed task).
    pub fn tasks_completed_so_far(&self) -> usize {
        self.cols.completions.iter().map(|c| c.len()).sum()
    }

    /// Simulated time reached so far.
    pub fn now_seconds(&self) -> f64 {
        self.now
    }

    /// Whether every client has reached a terminal phase.
    pub fn is_finished(&self) -> bool {
        self.terminated_count == self.programs.len()
    }

    /// Finalizes a completed run into its result and counters — the
    /// component-composition endpoint (a [`crate::component::Composition`]
    /// drives engines through the shared heap, then collects each one
    /// here). Errors if any client is still live.
    pub fn into_result(mut self) -> Result<(RunResult, EngineStats)> {
        if !self.is_finished() {
            return Err(Error::InvalidConfig(
                "into_result called before the run completed".into(),
            ));
        }
        Ok(self.build_result())
    }

    /// Assembles the [`RunResult`] and counters after the step loop ends.
    fn build_result(&mut self) -> (RunResult, EngineStats) {
        if self.was_capped {
            self.record(Event::DEVICE, EventKind::ThrottleOff);
            self.was_capped = false;
        }
        let n = self.programs.len();
        let makespan = Seconds::new(
            self.cols
                .finished
                .iter()
                .filter_map(|f| *f)
                .map(|s| s.value())
                .fold(0.0, f64::max),
        );
        let tasks_completed = self.cols.completions.iter().map(|c| c.len()).sum();
        let tasks_failed = (0..n)
            .filter(|&i| self.cols.failed[i])
            .map(|i| self.programs[i].tasks.len() - self.cols.completions[i].len())
            .sum();
        let total_energy = self.telemetry.total_energy();
        let clients: Vec<ClientOutcome> = (0..n)
            .map(|i| ClientOutcome {
                label: self.programs[i].label.clone(),
                started: self.cols.started[i].unwrap_or(Seconds::ZERO),
                finished: self.cols.finished[i].unwrap_or(Seconds::ZERO),
                gpu_progress: Seconds::new(self.cols.gpu_progress[i].max(0.0)),
                completions: std::mem::take(&mut self.cols.completions[i]),
                failed: self.cols.failed[i],
                wasted_progress: Seconds::new(self.cols.wasted_progress[i].max(0.0)),
                wasted_energy: Energy::from_joules(self.cols.wasted_energy[i].max(0.0)),
                dyn_energy: Energy::from_joules(self.cols.dyn_energy[i].max(0.0)),
            })
            .collect();
        let wasted_progress = Seconds::new(clients.iter().map(|c| c.wasted_progress.value()).sum());
        let wasted_energy =
            Energy::from_joules(clients.iter().map(|c| c.wasted_energy.joules()).sum());
        let mut result = RunResult {
            telemetry: std::mem::take(&mut self.telemetry),
            clients,
            makespan,
            total_energy,
            tasks_completed,
            failures: std::mem::take(&mut self.failures),
            tasks_failed,
            wasted_progress,
            wasted_energy,
            events: std::mem::replace(&mut self.log, EventLog::with_capacity(0)),
            completion_order: Vec::new(),
        };
        result.index_completions();
        let stats = EngineStats {
            events: self.events,
            rate_solves: self.rate_solves,
            incremental_solves: self.incremental_solves,
            full_solves: self.full_solves,
            resident_changes: self.resident_epoch,
            max_queue_depth: self.max_queue_depth,
            ticks: self.component_ticks,
            heap_max_depth: self.heap_max_depth,
        };
        (result, stats)
    }

    /// Is client `i` allowed to begin executing (arrival + mode gating)?
    fn eligible(&self, i: usize) -> bool {
        if self.programs[i].arrival.value() > self.now + EPS {
            return false;
        }
        match self.config.mode {
            // A crashed predecessor unblocks the queue just like a
            // completed one: the next job in line starts. `seq_head` is the
            // first non-terminated index, so `seq_head >= i` is exactly
            // "all predecessors terminated" without the scan.
            SharingMode::Sequential => {
                debug_assert_eq!(
                    self.seq_head >= i,
                    (0..i).all(|c| self.cols.phase[c].is_terminated()),
                    "sequential head index out of sync"
                );
                self.seq_head >= i
            }
            _ => true,
        }
    }

    /// Drains all zero-cost state transitions at the current time:
    /// arrivals, memory grants, task/kernel boundaries. Loops until a fixed
    /// point since one transition can enable another (e.g. a completion
    /// frees memory that unblocks a waiter).
    ///
    /// Only clients on the agenda are stepped. `step_client` is a no-op
    /// for every client off it — a client can only become steppable
    /// through an arming source (timer/kernel expiry in `advance`, arrival
    /// delivery, memory grant, predecessor termination, or its own prior
    /// transition), and each of those pushes the client. Stepping in
    /// ascending client order per pass preserves the historical per-pass
    /// iteration order.
    fn process_transitions(&mut self) -> Result<()> {
        let mut pass = std::mem::take(&mut self.pass_scratch);
        let result = loop {
            let mut changed = self.apply_due_faults();
            pass.clear();
            pass.append(&mut self.agenda);
            pass.sort_unstable();
            for &i in &pass {
                self.agenda_flag[i] = false;
            }
            let mut err = None;
            for &i in &pass {
                match self.step_client(i) {
                    Ok(stepped) => {
                        if stepped {
                            changed = true;
                            // A transition can enable the next one for the
                            // same client (e.g. Setup expiry with a
                            // zero-length first kernel).
                            self.push_agenda(i);
                        }
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = err {
                break Err(e);
            }
            changed |= self.grant_memory();
            if !changed {
                break Ok(());
            }
        };
        self.pass_scratch = pass;
        result?;
        self.fix_timeslice_active();
        Ok(())
    }

    /// Fires every injected fault due at the current time; returns whether
    /// any client was aborted. Faults are consumed in time order via the
    /// `next_fault` cursor, so each fires at most once.
    fn apply_due_faults(&mut self) -> bool {
        let mut changed = false;
        while let Some(&spec) = self.fault_queue.get(self.next_fault) {
            if spec.at.value() > self.now + EPS {
                break;
            }
            self.next_fault += 1;
            let origin = spec.scope.origin();
            if origin >= self.programs.len() || self.cols.phase[origin].is_terminated() {
                // An exited process cannot fault — and cannot crash the
                // server it already disconnected from.
                continue;
            }
            let victims = match spec.scope {
                FaultScope::Client(_) => {
                    self.abort_client(origin, origin);
                    1
                }
                FaultScope::Domain(_) => {
                    // Shared failure domain: the server goes down and every
                    // unfinished resident sibling dies with the origin.
                    self.record(Event::DEVICE, EventKind::ServerCrash { origin });
                    let mut count = 0;
                    for i in 0..self.programs.len() {
                        if !self.cols.phase[i].is_terminated() {
                            self.abort_client(i, origin);
                            count += 1;
                        }
                    }
                    count
                }
            };
            self.failures.push(FaultRecord {
                at: Seconds::new(self.now),
                origin,
                victims,
            });
            changed = true;
        }
        changed
    }

    /// Aborts client `i`: harvests the in-flight task's progress and energy
    /// as wasted work, frees its memory, and moves it to the terminal
    /// `Failed` phase.
    fn abort_client(&mut self, i: usize, origin: usize) {
        let was_running = self.is_running(i);
        self.cols.wasted_progress[i] += self.cols.task_progress[i];
        self.cols.wasted_energy[i] += self.cols.task_dyn_energy[i];
        self.cols.task_progress[i] = 0.0;
        self.cols.task_dyn_energy[i] = 0.0;
        self.cols.phase[i] = Phase::Failed;
        self.cols.failed[i] = true;
        self.cols.finished[i] = Some(Seconds::new(self.now));
        self.free_memory += self.cols.held_memory[i];
        self.cols.held_memory[i] = MemBytes::ZERO;
        self.memory_waiters.retain(|&w| w != i);
        self.timer_remove(i);
        if was_running {
            self.running_remove(i);
            self.bump_epoch_leave(i);
        }
        self.on_termination();
        self.record(i, EventKind::ClientFault { origin });
    }

    /// Current countdown for a client in the timer set (Setup/Gap): the
    /// authoritative value lives in the dense `timer_rem` array.
    fn timer_remaining(&self, i: usize) -> f64 {
        let pos = self.timer_pos[i];
        debug_assert_ne!(
            pos,
            usize::MAX,
            "client {i} has a timer phase but no timer slot"
        );
        self.timer_rem[pos]
    }

    /// Applies at most one transition for client `i`; returns whether
    /// anything changed.
    fn step_client(&mut self, i: usize) -> Result<bool> {
        match self.cols.phase[i] {
            Phase::Pending => {
                if self.eligible(i) {
                    self.begin_task(i);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            Phase::Setup if self.timer_remaining(i) <= EPS => {
                self.cols.kernel_idx[i] = 0;
                self.timer_remove(i);
                self.start_kernel(i);
                Ok(true)
            }
            Phase::Running if self.cols.run_rem[i] <= EPS => {
                self.finish_kernel(i);
                Ok(true)
            }
            Phase::Gap if self.timer_remaining(i) <= EPS => {
                self.cols.kernel_idx[i] += 1;
                self.timer_remove(i);
                self.start_kernel(i);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Begins the current task of client `i`: request memory, then setup.
    fn begin_task(&mut self, i: usize) {
        if self.cols.started[i].is_none() {
            self.cols.started[i] = Some(Seconds::new(self.now));
        }
        let task = &self.programs[i].tasks[self.cols.task_idx[i]];
        let (id, need, setup) = (task.id, task.memory, task.setup.value());
        if need <= self.free_memory {
            self.free_memory = self.free_memory.saturating_sub(need);
            self.cols.held_memory[i] = need;
            self.cols.phase[i] = Phase::Setup;
            self.timer_insert(i, setup);
            // The label is cloned only when the log is on: an event-less
            // run must not pay a per-task String allocation.
            if self.config.record_events {
                let label = self.programs[i].tasks[self.cols.task_idx[i]].label.clone();
                self.record(i, EventKind::TaskStart { task: id, label });
            }
        } else {
            self.cols.phase[i] = Phase::WaitingMemory;
            self.memory_waiters.push(i);
            self.record(i, EventKind::MemoryBlocked { task: id });
        }
    }

    /// Starts kernel `kernel_idx` of the current task, or completes the
    /// task if the kernel list is exhausted.
    fn start_kernel(&mut self, i: usize) {
        let partition = self.partition_of(i);
        let ti = self.cols.task_idx[i];
        let ki = self.cols.kernel_idx[i];
        let task = &self.programs[i].tasks[ti];
        if ki < task.kernels.len() {
            let kernel = &task.kernels[ki];
            // Hoist the occupancy/partition arithmetic out of the solver:
            // these inputs are fixed for the kernel's whole residency.
            let prepared = self.solver.prepare(kernel, partition);
            let remaining = kernel.solo_duration.value();
            let id = task.id;
            self.cols.phase[i] = Phase::Running;
            self.cols.run_rem[i] = remaining;
            self.cols.prepared[i] = prepared;
            self.running_insert(i);
            self.bump_epoch_join(i);
            self.record(
                i,
                EventKind::KernelStart {
                    task: id,
                    kernel_index: ki,
                },
            );
        } else {
            // Task complete: free memory, record, move on.
            let completion = TaskCompletion {
                task: task.id,
                label: task.label.clone(),
                client: i,
                at: Seconds::new(self.now),
            };
            let finished_task = completion.task;
            self.free_memory += self.cols.held_memory[i];
            self.cols.held_memory[i] = MemBytes::ZERO;
            self.cols.completions[i].push(completion);
            self.cols.task_idx[i] += 1;
            self.cols.kernel_idx[i] = 0;
            self.cols.task_progress[i] = 0.0;
            self.cols.task_dyn_energy[i] = 0.0;
            if self.cols.task_idx[i] < self.programs[i].tasks.len() {
                self.cols.phase[i] = Phase::Pending;
            } else {
                self.cols.phase[i] = Phase::Done;
                self.cols.finished[i] = Some(Seconds::new(self.now));
                self.on_termination();
            }
            self.record(
                i,
                EventKind::TaskEnd {
                    task: finished_task,
                },
            );
        }
    }

    /// Moves a client whose kernel finished into its host gap (or directly
    /// to the next kernel / task end when the gap is zero).
    fn finish_kernel(&mut self, i: usize) {
        // The kernel leaves the GPU here no matter which phase follows.
        self.running_remove(i);
        self.bump_epoch_leave(i);
        let ti = self.cols.task_idx[i];
        let ki = self.cols.kernel_idx[i];
        let task = &self.programs[i].tasks[ti];
        let gap = task.kernels[ki].host_gap.value();
        let id = task.id;
        self.record(
            i,
            EventKind::KernelEnd {
                task: id,
                kernel_index: ki,
            },
        );
        if gap > EPS {
            self.cols.phase[i] = Phase::Gap;
            self.timer_insert(i, gap);
        } else {
            self.cols.kernel_idx[i] += 1;
            self.start_kernel(i);
        }
    }

    /// Grants memory to blocked clients in FIFO order; returns whether any
    /// grant happened.
    fn grant_memory(&mut self) -> bool {
        let mut granted = false;
        let mut j = 0;
        while j < self.memory_waiters.len() {
            let i = self.memory_waiters[j];
            let ti = self.cols.task_idx[i];
            let need = self.programs[i].tasks[ti].memory;
            if need <= self.free_memory {
                self.free_memory = self.free_memory.saturating_sub(need);
                self.cols.held_memory[i] = need;
                let setup = self.programs[i].tasks[ti].setup.value();
                let task = self.programs[i].tasks[ti].id;
                self.cols.phase[i] = Phase::Setup;
                self.timer_insert(i, setup);
                self.push_agenda(i);
                self.memory_waiters.remove(j);
                self.record(i, EventKind::MemoryGranted { task });
                granted = true;
            } else {
                j += 1;
            }
        }
        granted
    }

    /// Keeps the time-slicing `active` pointer valid: points at a Running
    /// client, rotating round-robin when the current one stops running.
    fn fix_timeslice_active(&mut self) {
        let SharingMode::TimeSliced {
            quantum,
            switch_overhead,
        } = &self.config.mode
        else {
            return;
        };
        let quantum = quantum.value();
        let switch = switch_overhead.value();
        let still_valid = self.active.is_some_and(|a| self.is_running(a));
        if still_valid {
            return;
        }
        // Pick the next runnable client round-robin from next_rr.
        let n = self.programs.len();
        let next = (0..n)
            .map(|k| (self.next_rr + k) % n)
            .find(|&i| self.is_running(i));
        match next {
            Some(i) => {
                let switching_from_other =
                    self.active.is_some_and(|a| a != i) || self.active.is_none() && self.now > 0.0;
                self.active = Some(i);
                self.next_rr = (i + 1) % n;
                self.quantum_remaining = quantum;
                self.switch_remaining = if switching_from_other { switch } else { 0.0 };
                self.bump_epoch_invalidate();
            }
            None => {
                if self.active.is_some() || self.switch_remaining > EPS {
                    self.bump_epoch_invalidate();
                }
                self.active = None;
                self.quantum_remaining = 0.0;
                self.switch_remaining = 0.0;
            }
        }
    }

    /// Rotates the time-slice on quantum expiry (only meaningful when more
    /// than one client is runnable).
    fn rotate_timeslice(&mut self) {
        let SharingMode::TimeSliced {
            quantum,
            switch_overhead,
        } = self.config.mode.clone()
        else {
            return;
        };
        let runnable = self.running_set.len();
        if runnable <= 1 {
            // A fault can abort the only other runnable client mid-quantum
            // (see `rotation_with_single_survivor_after_fault`): with zero
            // or one runnable client there is nothing to rotate to, so the
            // expiry just restarts the quantum.
            self.quantum_remaining = quantum.value();
            return;
        }
        let n = self.programs.len();
        let Some(next) = (0..n)
            .map(|k| (self.next_rr + k) % n)
            .find(|&i| self.is_running(i))
        else {
            // Unreachable while `running_set` is non-empty (the round-robin
            // scan covers every index), but a rotation must never be a
            // panic path: degrade to a quantum restart.
            debug_assert!(false, "non-empty running set but no runnable client found");
            self.quantum_remaining = quantum.value();
            return;
        };
        if Some(next) != self.active {
            self.switch_remaining = switch_overhead.value();
            self.bump_epoch_invalidate();
            self.record(Event::DEVICE, EventKind::ContextSwitch { to_client: next });
        }
        self.active = Some(next);
        self.next_rr = (next + 1) % n;
        self.quantum_remaining = quantum.value();
    }

    /// Returns the indices of clients whose kernels are on the GPU now.
    fn scheduled_running(&self) -> Vec<usize> {
        match &self.config.mode {
            SharingMode::Mps { .. } | SharingMode::Sequential | SharingMode::Streams => {
                (0..self.programs.len())
                    .filter(|&i| self.is_running(i))
                    .collect()
            }
            SharingMode::TimeSliced { .. } => {
                if self.switch_remaining > EPS {
                    Vec::new() // context switch in progress: GPU drained
                } else {
                    self.active
                        .filter(|&a| self.is_running(a))
                        .map(|a| vec![a])
                        .unwrap_or_default()
                }
            }
        }
    }

    fn partition_of(&self, client: usize) -> Fraction {
        match &self.config.mode {
            SharingMode::Mps { partitions } => partitions[client],
            _ => Fraction::ONE,
        }
    }

    /// Re-solves contention rates and power for the current resident set
    /// into the persistent cache. All intermediate buffers are reused, so
    /// this allocates nothing after warm-up.
    ///
    /// When the accumulated [`SolveDelta`] is a single join/leave, the
    /// previous solution is updated in place through the contention
    /// solver's incremental entry points; anything else (or a fast-path
    /// bailout, or [`EngineConfig::force_full_resolve`]) runs the full
    /// pipeline. Both paths produce bit-identical allocations — the
    /// incremental one is cross-checked against a from-scratch solve in
    /// debug builds.
    fn refresh_solution(&mut self) {
        let delta = std::mem::replace(&mut self.delta, SolveDelta::None);
        let incremental = !self.config.force_full_resolve
            && match delta {
                SolveDelta::Join(i) => self.try_incremental_join(i),
                SolveDelta::Leave(i) => self.try_incremental_leave(i),
                SolveDelta::None | SolveDelta::Invalid => false,
            };
        if incremental {
            self.incremental_solves += 1;
            #[cfg(debug_assertions)]
            self.cross_check_incremental();
        } else {
            self.refresh_full();
            self.full_solves += 1;
        }
        self.apply_solution();
    }

    /// Full pipeline: rebuild the scheduled set and prepared inputs, then
    /// solve from scratch (also re-seeding the incremental solver's state).
    fn refresh_full(&mut self) {
        let mut scheduled = std::mem::take(&mut self.solved_scheduled);
        scheduled.clear();
        match &self.config.mode {
            SharingMode::Mps { .. } | SharingMode::Sequential | SharingMode::Streams => {
                // `running_set` is exactly the ascending list of Running
                // clients the historical per-client filter produced.
                scheduled.extend_from_slice(&self.running_set);
            }
            SharingMode::TimeSliced { .. } => {
                // During a context switch the GPU is drained.
                if self.switch_remaining <= EPS {
                    if let Some(a) = self.active {
                        if self.is_running(a) {
                            scheduled.push(a);
                        }
                    }
                }
            }
        }

        self.prepared_scratch.clear();
        for &i in &scheduled {
            debug_assert!(self.is_running(i), "scheduled client {i} is not running");
            self.prepared_scratch.push(self.cols.prepared[i]);
        }
        self.solver.solve_prepared_into(
            &self.prepared_scratch,
            &mut self.solve_scratch,
            &mut self.allocations_scratch,
        );
        self.solved_scheduled = scheduled;
    }

    /// Single-join incremental path: splice the joining client into the
    /// previous solve's inputs and run the solver's linear fast path.
    /// Returns `false` (leaving `refresh_full` to rebuild everything) when
    /// the fast path does not apply.
    fn try_incremental_join(&mut self, i: usize) -> bool {
        if matches!(self.config.mode, SharingMode::TimeSliced { .. }) {
            // Kernel starts do not imply scheduling under time slicing.
            return false;
        }
        let Err(pos) = self.solved_scheduled.binary_search(&i) else {
            debug_assert!(false, "joining client {i} already scheduled");
            return false;
        };
        debug_assert!(self.is_running(i), "joining client {i} is not running");
        let prepared = self.cols.prepared[i];
        self.solved_scheduled.insert(pos, i);
        self.prepared_scratch.insert(pos, prepared);
        self.solver.solve_prepared_join_into(
            &self.prepared_scratch,
            pos,
            &mut self.solve_scratch,
            &mut self.allocations_scratch,
        )
    }

    /// Single-leave incremental path (see [`Engine::try_incremental_join`]).
    fn try_incremental_leave(&mut self, i: usize) -> bool {
        if matches!(self.config.mode, SharingMode::TimeSliced { .. }) {
            return false;
        }
        let Ok(pos) = self.solved_scheduled.binary_search(&i) else {
            debug_assert!(false, "leaving client {i} was not scheduled");
            return false;
        };
        self.solved_scheduled.remove(pos);
        self.prepared_scratch.remove(pos);
        self.solver.solve_prepared_leave_into(
            &self.prepared_scratch,
            pos,
            &mut self.solve_scratch,
            &mut self.allocations_scratch,
        )
    }

    /// Derives the cached rate/power state from `allocations_scratch` and
    /// `solved_scheduled` — the shared tail of the full and incremental
    /// solve paths, bit-identical to the historical inline code.
    ///
    /// One fused pass: the four reductions (dynamic power, SM share, BW
    /// share) and two per-slot products run over the allocation slots
    /// once. Each left-to-right `acc + term` chain and each per-element
    /// multiplication is the same operation on the same values as the
    /// historical separate passes, so every output is bit-identical.
    fn apply_solution(&mut self) {
        let allocations = &self.allocations_scratch;
        let dyn_power: f64 = allocations.iter().map(|a| a.dyn_power_watts).sum();
        // Streams of one process interleave like a single client as far as
        // the power-peak model is concerned.
        let resident_processes = match self.config.mode {
            SharingMode::Streams => self.solved_scheduled.len().min(1),
            _ => self.solved_scheduled.len(),
        };
        self.solved_pstate = self.power.resolve(dyn_power, resident_processes);
        let clock_factor = self.solved_pstate.clock_factor;
        self.solved_rates.clear();
        self.solved_dyn_powers.clear();
        // -0.0 is `Sum for f64`'s identity; starting there keeps this
        // fused pass bit-identical to the historical `.sum()` reductions
        // (an idle GPU reports -0.0 utilization, and serde prints it).
        let mut sm_util = -0.0f64;
        let mut bw_util = -0.0f64;
        for a in allocations {
            self.solved_rates.push(a.rate * clock_factor);
            // The clock scaling that slows rates also scales the actual
            // dynamic draw, so per-slot attributed power sums to
            // (billed − idle).
            self.solved_dyn_powers
                .push(a.dyn_power_watts * clock_factor);
            sm_util += a.sm_share;
            bw_util += a.bw_share;
        }
        self.solved_sm_util = sm_util;
        self.solved_bw_util = bw_util;
        self.solved_epoch = self.resident_epoch;
        self.rate_solves += 1;
    }

    /// Debug-build invariant: an incremental solve must equal a
    /// from-scratch solve of the same membership, bit for bit.
    #[cfg(debug_assertions)]
    fn cross_check_incremental(&self) {
        debug_assert_eq!(
            self.solved_scheduled,
            self.scheduled_running(),
            "incremental solve membership diverged from the engine state"
        );
        let mut scratch = SolveScratch::default();
        let mut full = Vec::new();
        self.solver
            .solve_prepared_into(&self.prepared_scratch, &mut scratch, &mut full);
        let identical = full.len() == self.allocations_scratch.len()
            && full.iter().zip(&self.allocations_scratch).all(|(a, b)| {
                a.rate.to_bits() == b.rate.to_bits()
                    && a.sm_share.to_bits() == b.sm_share.to_bits()
                    && a.bw_share.to_bits() == b.bw_share.to_bits()
                    && a.dyn_power_watts.to_bits() == b.dyn_power_watts.to_bits()
            });
        debug_assert!(
            identical,
            "incremental solve diverged from full solve: {:?} vs {full:?}",
            self.allocations_scratch
        );
    }

    /// Plans the next time step: refreshes the rate/power solution and
    /// derives the time to the next event horizon (the plan half of the
    /// component protocol — no state other than the solution cache, the
    /// depth counter and `planned_quantum_event` is mutated).
    fn plan_advance(&mut self) -> Result<f64> {
        // Rates/power are a pure function of the resident set (plus the
        // fixed device, partitions and overheads), so between resident-set
        // epochs the cached solution is exact — same inputs, same
        // arithmetic, bit-identical outputs.
        if self.solved_epoch != self.resident_epoch {
            self.refresh_solution();
        } else {
            debug_assert_eq!(
                self.solved_scheduled,
                self.scheduled_running(),
                "resident-set cache is stale: a transition mutated the \
                 scheduled set without bumping the epoch"
            );
        }

        // Find the next event horizon. Every scheduled slot is a Running
        // client (debug-asserted above and in `refresh_full`), so the scan
        // reads the dense remaining/rate arrays with no phase dispatch.
        let mut dt = f64::INFINITY;
        // Kernel completions.
        for slot in 0..self.solved_scheduled.len() {
            let i = self.solved_scheduled[slot];
            debug_assert!(self.is_running(i), "scheduled client {i} is not running");
            let rate = self.solved_rates[slot];
            if rate > 0.0 {
                dt = dt.min(self.cols.run_rem[i] / rate);
            }
        }
        // Host-side timers (setup and gaps) always progress. `timer_rem`
        // holds exactly the countdowns of clients in those phases; min() is
        // order-independent, so scanning the (unsorted) dense array matches
        // the historical whole-roster scan bit for bit.
        for &remaining in &self.timer_rem {
            dt = dt.min(remaining);
        }
        // Future arrivals: earliest queued arrival strictly after `now`
        // whose client has neither started nor terminated. Equivalent to
        // the historical `Pending && !eligible` scan (see equeue module),
        // and min_j (at_j - now) == (min_j at_j) - now by monotonicity of
        // subtraction, so taking only the queue head is exact.
        let cols = &self.cols;
        if let Some(at) = self.arrivals.next_horizon(self.now, |c| {
            cols.started[c].is_some() || cols.phase[c].is_terminated()
        }) {
            dt = dt.min(at - self.now);
        }
        // Pending injected faults.
        if let Some(f) = self.fault_queue.get(self.next_fault) {
            let at = f.at.value();
            if at > self.now {
                dt = dt.min(at - self.now);
            }
        }
        // Time-slice events.
        let mut quantum_event = false;
        if matches!(self.config.mode, SharingMode::TimeSliced { .. }) {
            if self.switch_remaining > EPS {
                dt = dt.min(self.switch_remaining);
            } else if !self.solved_scheduled.is_empty() {
                let runnable = self.running_set.len();
                if runnable > 1 && self.quantum_remaining > EPS {
                    if self.quantum_remaining <= dt {
                        quantum_event = true;
                    }
                    dt = dt.min(self.quantum_remaining);
                }
            }
        }

        // Event-queue depth: indexed sources the next horizon is drawn from.
        let depth = self.running_set.len()
            + self.timer_set.len()
            + self.arrivals.pending()
            + (self.fault_queue.len() - self.next_fault);
        self.max_queue_depth = self.max_queue_depth.max(depth as u64);

        if !dt.is_finite() || dt <= 0.0 {
            return Err(Error::Stalled {
                at_seconds: self.now,
                detail: format!(
                    "no progress possible ({} scheduled kernels, dt={dt})",
                    self.solved_scheduled.len()
                ),
            });
        }

        self.planned_quantum_event = quantum_event;
        Ok(dt)
    }

    /// Applies a planned time step: integrates telemetry/progress/energy,
    /// decrements countdowns, advances `now` by `dt`, delivers arrivals and
    /// rotates the time-slice on a planned quantum expiry (the apply half
    /// of the component protocol).
    fn apply_advance(&mut self, dt: f64) -> Result<()> {
        let pstate = self.solved_pstate;
        let quantum_event = self.planned_quantum_event;
        self.planned_quantum_event = false;

        // Throttle transition events.
        if pstate.capped != self.was_capped {
            let kind = if pstate.capped {
                EventKind::ThrottleOn
            } else {
                EventKind::ThrottleOff
            };
            self.record(Event::DEVICE, kind);
            self.was_capped = pstate.capped;
        }

        // Integrate telemetry for this segment.
        self.telemetry.record(Segment {
            start: Seconds::new(self.now),
            end: Seconds::new(self.now + dt),
            sm_util: self.solved_sm_util.min(1.0),
            bw_util: self.solved_bw_util.min(1.0),
            power: pstate.power,
            clock_factor: pstate.clock_factor,
            capped: pstate.capped,
            active_clients: self.solved_scheduled.len(),
        });

        // Apply progress over the dense columns — no phase dispatch, every
        // slot is Running. Clients whose kernel or timer expires are pushed
        // onto the transition agenda so the next `process_transitions`
        // steps exactly them (plus any cascade) instead of the full roster.
        for slot in 0..self.solved_scheduled.len() {
            let i = self.solved_scheduled[slot];
            let progress = self.solved_rates[slot] * dt;
            let rem = (self.cols.run_rem[i] - progress).max(0.0);
            self.cols.run_rem[i] = rem;
            let dyn_e = self.solved_dyn_powers[slot] * dt;
            self.cols.gpu_progress[i] += progress;
            self.cols.task_progress[i] += progress;
            self.cols.dyn_energy[i] += dyn_e;
            self.cols.task_dyn_energy[i] += dyn_e;
            if rem <= EPS {
                self.push_agenda(i);
            }
        }
        for idx in 0..self.timer_rem.len() {
            let remaining = &mut self.timer_rem[idx];
            *remaining = (*remaining - dt).max(0.0);
            if *remaining <= EPS {
                let i = self.timer_set[idx];
                self.push_agenda(i);
            }
        }
        if matches!(self.config.mode, SharingMode::TimeSliced { .. }) {
            if self.switch_remaining > EPS {
                self.switch_remaining = (self.switch_remaining - dt).max(0.0);
                if self.switch_remaining <= EPS {
                    // Switch complete: the incoming client's kernel lands
                    // on the (previously drained) GPU.
                    self.bump_epoch_invalidate();
                }
            } else {
                self.quantum_remaining = (self.quantum_remaining - dt).max(0.0);
            }
        }
        self.now += dt;
        // Arm transition processing for clients whose arrival entered the
        // eligibility window (arrival <= now + EPS, mirroring `eligible`).
        // Each queue entry pops exactly once; re-arming an already-started
        // client is a harmless no-op step.
        while let Some(c) = self.arrivals.pop_armed(self.now + EPS) {
            self.push_agenda(c);
        }
        if quantum_event && self.quantum_remaining <= EPS {
            self.rotate_timeslice();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelSpec, LaunchConfig};
    use crate::program::TaskProgram;
    use mpshare_types::Percent;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    /// A kernel with a large grid (linear partition response), given SM and
    /// BW demand and a host gap.
    fn kernel(dur: f64, sm: f64, bw: f64, gap: f64) -> KernelSpec {
        KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 64, 1024),
            Seconds::new(dur),
        )
        .with_sm_demand(Fraction::new(sm))
        .with_bw_demand(Fraction::new(bw))
        .with_host_gap(Seconds::new(gap))
    }

    fn one_task_client(label: &str, id: u64, kernels: Vec<KernelSpec>) -> ClientProgram {
        let mut t = TaskProgram::new(TaskId::new(id), label, MemBytes::from_mib(1024));
        for k in kernels {
            t.push_kernel(k);
        }
        let mut c = ClientProgram::new(label);
        c.push_task(t);
        c
    }

    fn run(mode: SharingMode, programs: Vec<ClientProgram>) -> RunResult {
        Engine::new(EngineConfig::new(dev(), mode), programs)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn prevalidated_recycling_loop_is_bit_identical() {
        let programs = vec![
            one_task_client("a", 0, vec![kernel(2.0, 0.5, 0.2, 0.5); 3]),
            one_task_client("b", 1, vec![kernel(1.0, 0.7, 0.1, 0.2); 5]),
        ];
        let config = EngineConfig::new(dev(), SharingMode::mps_uniform(2));
        let reference = run(SharingMode::mps_uniform(2), programs.clone());

        // Roster + scratch round-trip through three runs; every run must
        // match the plain `Engine::new(...).run()` bit for bit.
        let mut roster = ValidatedPrograms::new(&dev(), programs).unwrap();
        let mut scratch = EngineScratch::new();
        for _ in 0..3 {
            let engine = Engine::new_prevalidated(config.clone(), roster, scratch).unwrap();
            let (result, _stats, r, s) = engine.run_recycling().unwrap();
            roster = r;
            scratch = s;
            assert_eq!(
                serde_json::to_string(&result).unwrap(),
                serde_json::to_string(&reference).unwrap()
            );
        }
        assert_eq!(roster.len(), 2);
    }

    #[test]
    fn prevalidated_roster_rejects_device_mismatch() {
        let programs = vec![one_task_client("a", 0, vec![kernel(1.0, 0.5, 0.1, 0.0)])];
        let roster = ValidatedPrograms::new(&dev(), programs).unwrap();
        let mut other = dev();
        other.num_sms += 1;
        let config = EngineConfig::new(other, SharingMode::mps_uniform(1));
        let err = Engine::new_prevalidated(config, roster, EngineScratch::new());
        assert!(err.is_err(), "device mismatch must not be trusted");
    }

    #[test]
    fn single_client_runs_for_its_solo_time() {
        let c = one_task_client("solo", 0, vec![kernel(2.0, 0.5, 0.1, 0.5)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        // 2.0s kernel + 0.5s gap after it.
        assert!(
            (r.makespan.value() - 2.5).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
        assert_eq!(r.tasks_completed, 1);
        assert_eq!(r.clients[0].completions.len(), 1);
    }

    #[test]
    fn non_interfering_clients_fully_overlap() {
        let a = one_task_client("a", 0, vec![kernel(4.0, 0.3, 0.1, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(4.0, 0.3, 0.1, 0.0)]);
        let r = run(SharingMode::mps_uniform(2), vec![a, b]);
        assert!(
            (r.makespan.value() - 4.0).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn oversubscribed_clients_slow_down() {
        let a = one_task_client("a", 0, vec![kernel(4.0, 0.8, 0.0, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(4.0, 0.8, 0.0, 0.0)]);
        let r = run(SharingMode::mps_uniform(2), vec![a, b]);
        // Σ demand = 1.6 -> rate 1/1.6 -> 6.4 s.
        assert!(
            (r.makespan.value() - 6.4).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn sequential_mode_runs_one_after_another() {
        let a = one_task_client("a", 0, vec![kernel(3.0, 0.3, 0.0, 1.0)]);
        let b = one_task_client("b", 1, vec![kernel(3.0, 0.3, 0.0, 1.0)]);
        let r = run(SharingMode::Sequential, vec![a, b]);
        assert!(
            (r.makespan.value() - 8.0).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
        // Client b must start only after a finishes.
        assert!(r.clients[1].started >= r.clients[0].finished);
    }

    #[test]
    fn sequential_energy_exceeds_mps_energy_for_low_util_pair() {
        // The paper's core energy result: overlapping low-utilization work
        // amortizes idle power.
        let mk = |id| one_task_client("w", id, vec![kernel(5.0, 0.2, 0.05, 2.0)]);
        let seq = run(SharingMode::Sequential, vec![mk(0), mk(1)]);
        let mps = run(SharingMode::mps_uniform(2), vec![mk(2), mk(3)]);
        assert!(mps.makespan < seq.makespan);
        assert!(
            mps.total_energy.joules() < seq.total_energy.joules(),
            "mps {} !< seq {}",
            mps.total_energy,
            seq.total_energy
        );
    }

    #[test]
    fn partition_slows_a_saturating_kernel() {
        let mk = |id| one_task_client("w", id, vec![kernel(4.0, 0.9, 0.0, 0.0)]);
        let full = run(SharingMode::mps_uniform(1), vec![mk(0)]);
        let quarter = run(
            SharingMode::Mps {
                partitions: vec![Fraction::new(0.25)],
            },
            vec![mk(1)],
        );
        assert!((full.makespan.value() - 4.0).abs() < 1e-9);
        // Large grid -> nearly linear: ~16 s at 25 % partition.
        assert!(
            (quarter.makespan.value() - 16.0).abs() < 0.5,
            "makespan {}",
            quarter.makespan
        );
    }

    #[test]
    fn power_capping_throttles_and_is_accounted() {
        // Two hot kernels: dyn power = 2 * (1.75*90 + 1.0*50) = 415 W >> cap.
        let mk = |id| one_task_client("hot", id, vec![kernel(4.0, 0.9, 0.5, 0.0)]);
        let r = run(SharingMode::mps_uniform(2), vec![mk(0), mk(1)]);
        assert!(r.telemetry.capped_time().value() > 0.0);
        assert!(r.telemetry.capped_fraction() > 0.5);
        // Power never exceeds the cap.
        for s in r.telemetry.segments() {
            assert!(s.power.watts() <= 300.0 + 1e-9);
        }
        // Throttling stretches the makespan beyond pure contention.
        // Σ sm demand 1.8 -> contention alone gives 4*1.8 = 7.2 s.
        assert!(r.makespan.value() > 7.2);
    }

    #[test]
    fn timeslicing_serializes_gpu_but_overlaps_host_gaps() {
        // Kernel 1 s + gap 1 s, two kernels per task. Solo wall = 4 s.
        let mk = |id| {
            one_task_client(
                "bursty",
                id,
                vec![kernel(1.0, 0.6, 0.0, 1.0), kernel(1.0, 0.6, 0.0, 1.0)],
            )
        };
        let seq = run(SharingMode::Sequential, vec![mk(0), mk(1)]);
        let ts = run(SharingMode::timesliced_default(), vec![mk(2), mk(3)]);
        let mps = run(SharingMode::mps_uniform(2), vec![mk(4), mk(5)]);
        assert!((seq.makespan.value() - 8.0).abs() < 1e-6);
        // Time slicing overlaps one client's gaps with the other's kernels:
        // strictly better than sequential, worse than (or equal to) MPS.
        assert!(
            ts.makespan < seq.makespan,
            "ts {} seq {}",
            ts.makespan,
            seq.makespan
        );
        assert!(mps.makespan.value() <= ts.makespan.value() + 1e-6);
    }

    #[test]
    fn memory_pressure_blocks_second_client() {
        let mut big = one_task_client("big", 0, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        big.tasks[0].memory = MemBytes::from_gib(60);
        let mut big2 = one_task_client("big2", 1, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        big2.tasks[0].memory = MemBytes::from_gib(60);
        let r = run(SharingMode::mps_uniform(2), vec![big, big2]);
        // Second can only start after first frees its 60 GiB.
        assert!(
            (r.makespan.value() - 4.0).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
        assert_eq!(r.tasks_completed, 2);
    }

    #[test]
    fn multi_task_client_respects_order_and_counts_tasks() {
        let mut c = ClientProgram::new("wf");
        for id in 0..3 {
            let mut t = TaskProgram::new(TaskId::new(id), format!("t{id}"), MemBytes::from_mib(64));
            t.push_kernel(kernel(1.0, 0.4, 0.0, 0.0));
            c.push_task(t);
        }
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert_eq!(r.tasks_completed, 3);
        let times: Vec<f64> = r.clients[0]
            .completions
            .iter()
            .map(|x| x.at.value())
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert!((r.makespan.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_delay_start() {
        let mut c = one_task_client("late", 0, vec![kernel(1.0, 0.3, 0.0, 0.0)]);
        c.arrival = Seconds::new(5.0);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert!((r.clients[0].started.value() - 5.0).abs() < 1e-9);
        assert!((r.makespan.value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_covers_makespan_and_reports_utilization() {
        let c = one_task_client("solo", 0, vec![kernel(2.0, 0.5, 0.25, 2.0)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert!((r.telemetry.total_time().value() - r.makespan.value()).abs() < 1e-9);
        // 2 s at 50% + 2 s at 0% -> 25% average.
        assert!((r.telemetry.avg_sm_util().value() - 25.0).abs() < 0.01);
        assert!((r.telemetry.avg_bw_util().value() - 12.5).abs() < 0.01);
        assert!((r.telemetry.busy_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn partition_length_mismatch_is_rejected() {
        let c = one_task_client("a", 0, vec![kernel(1.0, 0.3, 0.0, 0.0)]);
        let cfg = EngineConfig::new(
            dev(),
            SharingMode::Mps {
                partitions: vec![Fraction::ONE, Fraction::ONE],
            },
        );
        assert!(Engine::new(cfg, vec![c]).is_err());
    }

    #[test]
    fn client_limit_is_enforced() {
        let programs: Vec<ClientProgram> = (0..49)
            .map(|id| one_task_client("c", id, vec![kernel(0.1, 0.01, 0.0, 0.0)]))
            .collect();
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(49));
        let err = Engine::new(cfg, programs).unwrap_err();
        assert!(matches!(err, Error::ClientLimitExceeded { limit: 48, .. }));
    }

    #[test]
    fn forty_eight_clients_run_to_completion() {
        let programs: Vec<ClientProgram> = (0..48)
            .map(|id| one_task_client("c", id, vec![kernel(0.5, 0.02, 0.01, 0.1)]))
            .collect();
        let r = run(SharingMode::mps_uniform(48), programs);
        assert_eq!(r.tasks_completed, 48);
        // 48 × 0.02 = 0.96 demand: no contention, everything overlaps.
        assert!(r.makespan.value() < 0.7, "makespan {}", r.makespan);
    }

    #[test]
    fn gpu_progress_equals_solo_duration_without_contention() {
        let c = one_task_client("solo", 0, vec![kernel(3.0, 0.4, 0.0, 1.0)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert!((r.clients[0].gpu_progress.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn run_result_throughput_and_sorted_completions() {
        let a = one_task_client("a", 0, vec![kernel(1.0, 0.2, 0.0, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        let r = run(SharingMode::mps_uniform(2), vec![a, b]);
        assert_eq!(r.tasks_completed, 2);
        assert!((r.throughput() - 2.0 / r.makespan.value()).abs() < 1e-12);
        let completions = r.completions();
        assert!(completions[0].at <= completions[1].at);
        assert_eq!(completions[0].label, "a");
    }

    #[test]
    fn average_power_matches_hand_computation() {
        // Solo kernel: sm 0.5, bw 0.2 -> dyn = 1.75*50 + 1.0*20 = 107.5 W;
        // total 182.5 W while busy.
        let c = one_task_client("solo", 0, vec![kernel(2.0, 0.5, 0.2, 0.0)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert!((r.telemetry.avg_power().watts() - 182.5).abs() < 1e-6);
        let expected: f64 = 182.5 * 2.0;
        assert!((r.total_energy.joules() - expected).abs() < 1e-6);
    }

    #[test]
    fn streams_avoid_per_client_pressure() {
        // Two identical light kernels with high client sensitivity: under
        // MPS they pay per-client pressure; as streams of one process they
        // run at full speed.
        let mk = |id| {
            let k = kernel(2.0, 0.2, 0.05, 0.0).with_client_sensitivity(0.2);
            let mut t = TaskProgram::new(TaskId::new(id), "s", MemBytes::from_mib(64));
            t.push_kernel(k);
            let mut c = ClientProgram::new("s");
            c.push_task(t);
            c
        };
        let mps = run(SharingMode::mps_uniform(2), vec![mk(0), mk(1)]);
        let streams = run(SharingMode::Streams, vec![mk(2), mk(3)]);
        assert!(
            (streams.makespan.value() - 2.0).abs() < 1e-6,
            "streams {}",
            streams.makespan
        );
        assert!(mps.makespan.value() > 2.2, "mps {}", mps.makespan);
    }

    #[test]
    fn streams_still_contend_for_resources() {
        let mk = |id| one_task_client("s", id, vec![kernel(2.0, 0.8, 0.0, 0.0)]);
        let r = run(SharingMode::Streams, vec![mk(0), mk(1)]);
        // Σ demand 1.6 -> both slow to 1/1.6.
        assert!(
            (r.makespan.value() - 3.2).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn streams_do_not_trigger_mps_power_peaks() {
        // ~210 W dynamic: the 1.18x two-client peak factor caps MPS
        // (75 + 1.18*210 > 300) while the fused-process streams stay under
        // (75 + 210 < 300).
        let mk = |id| one_task_client("s", id, vec![kernel(2.0, 0.55, 0.2, 0.0)]);
        let mps = run(SharingMode::mps_uniform(2), vec![mk(0), mk(1)]);
        let streams = run(SharingMode::Streams, vec![mk(2), mk(3)]);
        assert!(mps.telemetry.capped_time().value() > 0.0);
        assert_eq!(streams.telemetry.capped_time().value(), 0.0);
    }

    #[test]
    fn event_log_records_task_and_kernel_boundaries() {
        let c = one_task_client(
            "solo",
            0,
            vec![kernel(1.0, 0.4, 0.0, 0.5), kernel(1.0, 0.4, 0.0, 0.0)],
        );
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(1)).with_event_log(true);
        let r = Engine::new(cfg, vec![c]).unwrap().run().unwrap();
        let spans = r.events.kernel_spans();
        assert_eq!(spans.len(), 2);
        // First kernel runs [0, 1), gap to 1.5, second kernel [1.5, 2.5).
        assert_eq!(spans[0].3.value(), 0.0);
        assert!((spans[0].4.value() - 1.0).abs() < 1e-9);
        assert!((spans[1].3.value() - 1.5).abs() < 1e-9);
        // Task start/end present.
        use crate::events::EventKind;
        assert!(r
            .events
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::TaskStart { .. })));
        assert!(r
            .events
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::TaskEnd { .. })));
    }

    #[test]
    fn event_log_throttle_time_matches_telemetry() {
        let mk = |id| one_task_client("hot", id, vec![kernel(4.0, 0.9, 0.5, 0.0)]);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_event_log(true);
        let r = Engine::new(cfg, vec![mk(0), mk(1)]).unwrap().run().unwrap();
        let logged = r.events.throttled_time().value();
        let integrated = r.telemetry.capped_time().value();
        assert!(logged > 0.0);
        assert!(
            (logged - integrated).abs() < 1e-6,
            "log {logged} vs telemetry {integrated}"
        );
    }

    #[test]
    fn event_log_records_memory_blocking() {
        use crate::events::EventKind;
        let mut a = one_task_client("big", 0, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        a.tasks[0].memory = MemBytes::from_gib(60);
        let mut b = one_task_client("big2", 1, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        b.tasks[0].memory = MemBytes::from_gib(60);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_event_log(true);
        let r = Engine::new(cfg, vec![a, b]).unwrap().run().unwrap();
        assert!(r
            .events
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::MemoryBlocked { .. })));
    }

    #[test]
    fn event_log_is_empty_when_disabled() {
        let c = one_task_client("solo", 0, vec![kernel(1.0, 0.4, 0.0, 0.0)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        assert!(r.events.is_empty());
    }

    #[test]
    fn percent_types_round_trip_through_telemetry() {
        let c = one_task_client("solo", 0, vec![kernel(1.0, 0.33, 0.11, 0.0)]);
        let r = run(SharingMode::mps_uniform(1), vec![c]);
        let sm: Percent = r.telemetry.avg_sm_util();
        assert!((sm.value() - 33.0).abs() < 0.01);
    }

    /// Gap-heavy staggered workload: many events are pure time advancement
    /// (arrivals, setup expiry, gap expiry in other clients), so the rate
    /// cache must re-solve strictly less often than once per event, and
    /// never more often than the resident set changes.
    #[test]
    fn rate_solves_bounded_by_resident_changes_on_gap_heavy_run() {
        let programs: Vec<ClientProgram> = (0..8)
            .map(|id| {
                // Distinct durations/gaps per client so no two timers ever
                // expire at the same instant (merged events would hide the
                // pure-advancement ones this test is about).
                let dur = 0.2 + id as f64 * 0.013;
                let gap = 0.45 + id as f64 * 0.017;
                let kernels = (0..6).map(|_| kernel(dur, 0.05, 0.02, gap)).collect();
                let mut c = one_task_client("gappy", id, kernels);
                c.tasks[0].setup = Seconds::new(0.3);
                c.arrival = Seconds::new(id as f64 * 0.171);
                c
            })
            .collect();
        let engine = Engine::new(
            EngineConfig::new(dev(), SharingMode::mps_uniform(8)),
            programs,
        )
        .unwrap();
        let (r, stats) = engine.run_with_stats().unwrap();
        assert_eq!(r.tasks_completed, 8);
        assert!(
            stats.rate_solves <= stats.resident_changes,
            "rate solves {} must not exceed resident-set changes {}",
            stats.rate_solves,
            stats.resident_changes
        );
        assert!(
            stats.resident_changes < stats.events,
            "expected pure time-advancement events: {} changes vs {} events",
            stats.resident_changes,
            stats.events
        );
        assert!(stats.rate_solves < stats.events);
    }

    #[test]
    fn run_with_stats_matches_run() {
        let mk = || {
            let programs: Vec<ClientProgram> = (0..4)
                .map(|id| one_task_client("c", id, vec![kernel(0.5, 0.3, 0.1, 0.2)]))
                .collect();
            Engine::new(
                EngineConfig::new(dev(), SharingMode::mps_uniform(4)),
                programs,
            )
            .unwrap()
        };
        let plain = mk().run().unwrap();
        let (with_stats, stats) = mk().run_with_stats().unwrap();
        assert_eq!(plain.makespan, with_stats.makespan);
        assert_eq!(plain.total_energy, with_stats.total_energy);
        assert!(stats.events > 0 && stats.rate_solves > 0);
    }

    #[test]
    fn client_fault_aborts_mid_run_and_accounts_waste() {
        // Solo 4 s kernel, no contention (rate 1): a fault at 1.5 s wastes
        // exactly 1.5 s of progress and all dynamic energy spent so far.
        let c = one_task_client("victim", 0, vec![kernel(4.0, 0.3, 0.1, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.5), 0);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(1)).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![c]).unwrap().run().unwrap();
        assert_eq!(r.tasks_completed, 0);
        assert_eq!(r.tasks_failed, 1);
        assert!(r.clients[0].failed);
        assert!(
            (r.makespan.value() - 1.5).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
        assert!((r.wasted_progress.value() - 1.5).abs() < 1e-9);
        assert!((r.wasted_fraction() - 1.0).abs() < 1e-12);
        // All dynamic energy spent went to the aborted task.
        assert!(r.clients[0].dyn_energy.joules() > 0.0);
        assert_eq!(r.clients[0].wasted_energy, r.clients[0].dyn_energy);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].origin, 0);
        assert_eq!(r.failures[0].victims, 1);
    }

    #[test]
    fn domain_fault_kills_all_resident_clients() {
        let a = one_task_client("a", 0, vec![kernel(4.0, 0.2, 0.0, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(4.0, 0.2, 0.0, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_domain_fault(Seconds::new(1.0), 0);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2))
            .with_fault_plan(faults)
            .with_event_log(true);
        let r = Engine::new(cfg, vec![a, b]).unwrap().run().unwrap();
        assert_eq!(r.tasks_completed, 0);
        assert_eq!(r.tasks_failed, 2);
        assert!(r.clients.iter().all(|c| c.failed));
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].victims, 2);
        // Device-level ServerCrash, then a ClientFault per victim with the
        // origin attributed.
        assert!(r
            .events
            .events()
            .iter()
            .any(|e| e.client == Event::DEVICE
                && matches!(e.kind, EventKind::ServerCrash { origin: 0 })));
        let client_faults: Vec<_> = r
            .events
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ClientFault { origin: 0 }))
            .collect();
        assert_eq!(client_faults.len(), 2);
    }

    #[test]
    fn fault_after_completion_is_a_noop() {
        // Origin finishes at 1 s; a domain fault at 2 s must not fire (an
        // exited process cannot crash the server), so the sibling survives.
        let a = one_task_client("a", 0, vec![kernel(1.0, 0.1, 0.0, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(4.0, 0.1, 0.0, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_domain_fault(Seconds::new(2.0), 0);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![a, b]).unwrap().run().unwrap();
        assert_eq!(r.tasks_completed, 2);
        assert_eq!(r.tasks_failed, 0);
        assert!(r.failures.is_empty());
        assert_eq!(r.wasted_progress, Seconds::ZERO);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let mk = |id| one_task_client("w", id, vec![kernel(2.0, 0.4, 0.1, 0.5)]);
        let plain = run(SharingMode::mps_uniform(2), vec![mk(0), mk(1)]);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2))
            .with_fault_plan(FaultPlan::default());
        let with_plan = Engine::new(cfg, vec![mk(0), mk(1)]).unwrap().run().unwrap();
        assert_eq!(plain.makespan, with_plan.makespan);
        assert_eq!(plain.total_energy, with_plan.total_energy);
        assert_eq!(plain.clients, with_plan.clients);
        assert!(with_plan.failures.is_empty());
        assert_eq!(with_plan.tasks_failed, 0);
    }

    #[test]
    fn sequential_queue_unblocks_after_predecessor_crash() {
        let a = one_task_client("a", 0, vec![kernel(3.0, 0.3, 0.0, 0.0)]);
        let b = one_task_client("b", 1, vec![kernel(3.0, 0.3, 0.0, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);
        let cfg = EngineConfig::new(dev(), SharingMode::Sequential).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![a, b]).unwrap().run().unwrap();
        // a dies at 1 s; b starts right then and runs its solo 3 s.
        assert!((r.clients[1].started.value() - 1.0).abs() < 1e-9);
        assert!(
            (r.makespan.value() - 4.0).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
        assert_eq!(r.tasks_completed, 1);
        assert_eq!(r.tasks_failed, 1);
    }

    #[test]
    fn abort_frees_memory_for_blocked_waiter() {
        let mut a = one_task_client("big", 0, vec![kernel(10.0, 0.2, 0.0, 0.0)]);
        a.tasks[0].memory = MemBytes::from_gib(60);
        let mut b = one_task_client("big2", 1, vec![kernel(2.0, 0.2, 0.0, 0.0)]);
        b.tasks[0].memory = MemBytes::from_gib(60);
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);
        let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![a, b]).unwrap().run().unwrap();
        // b was blocked on memory until a's abort freed 60 GiB at 1 s.
        assert_eq!(r.tasks_completed, 1);
        assert!(!r.clients[1].failed);
        assert!(
            (r.makespan.value() - 3.0).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn timesliced_fault_releases_gpu_to_sibling() {
        let mk = |id| one_task_client("ts", id, vec![kernel(2.0, 0.6, 0.0, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(0.5), 0);
        let cfg =
            EngineConfig::new(dev(), SharingMode::timesliced_default()).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![mk(0), mk(1)]).unwrap().run().unwrap();
        assert_eq!(r.tasks_completed, 1);
        assert!(!r.clients[1].failed);
        // The survivor still finishes: the fault released the device.
        assert!(r.clients[1].completions.len() == 1);
    }

    #[test]
    fn seeded_fault_runs_are_deterministic() {
        let mk = || {
            let programs: Vec<ClientProgram> = (0..6)
                .map(|id| one_task_client("w", id, vec![kernel(2.0, 0.3, 0.1, 0.2)]))
                .collect();
            let horizons = vec![Seconds::new(2.0); 6];
            let faults = FaultPlan::seeded(99, &horizons, 0.5)
                .unwrap()
                .widen_to_domain();
            let cfg = EngineConfig::new(dev(), SharingMode::mps_uniform(6)).with_fault_plan(faults);
            Engine::new(cfg, programs).unwrap().run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.clients, b.clients);
        assert!(
            !a.failures.is_empty(),
            "expected at least one fault at p=0.5"
        );
    }

    /// The precomputed completion index must yield exactly the merge-sort
    /// fallback order (including ties, which both paths break by client
    /// order thanks to the stable sort).
    #[test]
    fn completion_index_matches_sort_fallback() {
        let programs: Vec<ClientProgram> = (0..6)
            .map(|id| {
                // Identical durations force completion-time ties.
                one_task_client("tie", id, vec![kernel(1.0, 0.05, 0.01, 0.1)])
            })
            .collect();
        let r = run(SharingMode::mps_uniform(6), programs);
        assert_eq!(r.completion_order.len(), r.tasks_completed);
        let fast: Vec<TaskCompletion> = r.completions().into_iter().cloned().collect();
        let mut fallback = r.clone();
        fallback.completion_order.clear();
        let slow: Vec<TaskCompletion> = fallback.completions().into_iter().cloned().collect();
        assert_eq!(fast, slow);
    }

    /// Regression for the at-only completion sort: the canonical key is the
    /// full `(at, client, task)` triple. With `at` alone, equal-time records
    /// kept whatever flatten order the clients vec happened to have — which
    /// leaks in merged multi-instance (MIG) results, where the outcome at
    /// index 0 can carry an instance-local `client` field that is not 0 and
    /// per-client lists need not be in task order.
    #[test]
    fn equal_time_completions_sort_canonically_across_clients() {
        let mut r = run(
            SharingMode::mps_uniform(2),
            vec![
                one_task_client("a", 0, vec![kernel(1.0, 0.2, 0.0, 0.0)]),
                one_task_client("b", 1, vec![kernel(1.0, 0.2, 0.0, 0.0)]),
            ],
        );
        let tc = |task: u64, client: usize, at: f64| TaskCompletion {
            task: TaskId::new(task),
            label: format!("t{task}"),
            client,
            at: Seconds::new(at),
        };
        // Mimic a merged result: flatten order (index 0 first) disagrees
        // with client-field order, within-client lists disagree with task
        // order, and every record completes at the same instant. An at-only
        // stable sort would return flatten order: clients 1,1,0,0.
        r.clients[0].completions = vec![tc(7, 1, 2.0), tc(3, 1, 2.0)];
        r.clients[1].completions = vec![tc(5, 0, 2.0), tc(1, 0, 2.0)];
        r.completion_order.clear();

        let expect = vec![(2.0, 0, 1), (2.0, 0, 5), (2.0, 1, 3), (2.0, 1, 7)];
        let observed = |r: &RunResult| -> Vec<(f64, usize, u64)> {
            r.completions()
                .iter()
                .map(|c| (c.at.value(), c.client, c.task.raw()))
                .collect()
        };
        // Merge-and-sort fallback path (completion_order empty).
        assert_eq!(observed(&r), expect);
        // Precomputed index path must agree record for record.
        r.index_completions();
        assert_eq!(r.completion_order.len(), 4);
        assert_eq!(observed(&r), expect);
    }

    /// Regression for the rotation panic path: a fault aborts the only
    /// other runnable client mid-quantum, so a later quantum expiry finds a
    /// single survivor. The old code `.expect`ed at least two runnable
    /// clients and panicked; rotation must instead restart the quantum and
    /// let the survivor run to completion.
    #[test]
    fn rotation_with_single_survivor_after_fault() {
        // 2 ms quantum: a 50 ms kernel guarantees many expirations after
        // the 1 ms fault leaves exactly one runnable client.
        let mk = |id| one_task_client("ts", id, vec![kernel(0.05, 0.5, 0.0, 0.0)]);
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(0.001), 1);
        let cfg =
            EngineConfig::new(dev(), SharingMode::timesliced_default()).with_fault_plan(faults);
        let r = Engine::new(cfg, vec![mk(0), mk(1)]).unwrap().run().unwrap();
        assert_eq!(r.tasks_completed, 1);
        assert_eq!(r.tasks_failed, 1);
        assert!(r.clients[1].failed);
        assert!(!r.clients[0].failed);
        assert_eq!(r.clients[0].completions.len(), 1);
        // The survivor runs solo after the fault: no sibling to rotate to,
        // so the run still terminates at its solo duration.
        assert!(
            r.makespan.value() >= 0.05 && r.makespan.value() < 0.1,
            "makespan {}",
            r.makespan
        );
    }
}
