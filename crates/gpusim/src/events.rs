//! Discrete-event log: what happened, when, to whom.
//!
//! The engine optionally records every state transition — task and kernel
//! boundaries, memory blocking, throttle transitions, time-slice context
//! switches. The log supports kernel-level timeline export and the kind of
//! post-mortem debugging Nsight traces are used for on real hardware.

use mpshare_types::{Seconds, TaskId};
use serde::{Deserialize, Serialize};

/// One logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub at: Seconds,
    /// Client index the event belongs to (`usize::MAX` for device-level
    /// events, exposed as [`Event::DEVICE`]).
    pub client: usize,
    pub kind: EventKind,
}

impl Event {
    /// Sentinel client index for device-level events.
    pub const DEVICE: usize = usize::MAX;
}

/// Event kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A task began host-side setup.
    TaskStart { task: TaskId, label: String },
    /// A task completed (memory released).
    TaskEnd { task: TaskId },
    /// A client blocked waiting for device memory.
    MemoryBlocked { task: TaskId },
    /// A blocked client's memory request was satisfied (pairs with the
    /// preceding `MemoryBlocked` for the same task; the gap between them
    /// is the client's memory-wait time).
    MemoryGranted { task: TaskId },
    /// A kernel became resident on the GPU.
    KernelStart { task: TaskId, kernel_index: usize },
    /// A kernel retired.
    KernelEnd { task: TaskId, kernel_index: usize },
    /// The SW power cap began throttling (device-level).
    ThrottleOn,
    /// The SW power cap released (device-level).
    ThrottleOff,
    /// Time-slice context switch to `client` (device-level; the client is
    /// in the payload because the event marks the *scheduler's* decision).
    ContextSwitch { to_client: usize },
    /// The client was aborted by an injected fault. `origin` is the client
    /// whose fatal fault caused it; equal to the event's own client unless
    /// the failure domain is shared (MPS server / fused process).
    ClientFault { origin: usize },
    /// A fatal client fault took down the shared server, aborting every
    /// resident sibling (device-level; the per-client `ClientFault`
    /// events follow).
    ServerCrash { origin: usize },
}

/// Append-only event log with bounded growth.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
    /// Cap on recorded events; once reached, further events are counted
    /// but dropped (the log never makes a long simulation unbounded).
    capacity: usize,
    dropped: usize,
}

impl EventLog {
    /// Default capacity: generous for any single experiment run.
    pub const DEFAULT_CAPACITY: usize = 1_000_000;

    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    pub fn record(&mut self, at: Seconds, client: usize, kind: EventKind) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(Event { at, client, kind });
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped after the capacity was reached.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Iterates the events of one client.
    pub fn for_client(&self, client: usize) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.client == client)
    }

    /// Reconstructs kernel spans `(client, task, kernel_index, start, end)`
    /// by pairing start/end events.
    pub fn kernel_spans(&self) -> Vec<(usize, TaskId, usize, Seconds, Seconds)> {
        let mut open: Vec<(usize, TaskId, usize, Seconds)> = Vec::new();
        let mut spans = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::KernelStart { task, kernel_index } => {
                    open.push((e.client, *task, *kernel_index, e.at));
                }
                EventKind::KernelEnd { task, kernel_index } => {
                    if let Some(pos) = open
                        .iter()
                        .position(|(c, t, k, _)| *c == e.client && t == task && k == kernel_index)
                    {
                        let (c, t, k, start) = open.swap_remove(pos);
                        spans.push((c, t, k, start, e.at));
                    }
                }
                _ => {}
            }
        }
        spans.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite times"));
        spans
    }

    /// Total time between ThrottleOn/ThrottleOff pairs (cross-check for
    /// the telemetry's capped-time integral).
    pub fn throttled_time(&self) -> Seconds {
        let mut total = 0.0;
        let mut since: Option<Seconds> = None;
        for e in &self.events {
            match e.kind {
                EventKind::ThrottleOn => since = since.or(Some(e.at)),
                EventKind::ThrottleOff => {
                    if let Some(s) = since.take() {
                        total += (e.at.saturating_sub(s)).value();
                    }
                }
                _ => {}
            }
        }
        Seconds::new(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> Seconds {
        Seconds::new(secs)
    }

    #[test]
    fn records_and_filters_by_client() {
        let mut log = EventLog::new();
        log.record(
            t(0.0),
            0,
            EventKind::TaskStart {
                task: TaskId::new(1),
                label: "a".into(),
            },
        );
        log.record(
            t(1.0),
            1,
            EventKind::TaskStart {
                task: TaskId::new(2),
                label: "b".into(),
            },
        );
        log.record(
            t(2.0),
            0,
            EventKind::TaskEnd {
                task: TaskId::new(1),
            },
        );
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_client(0).count(), 2);
        assert_eq!(log.for_client(1).count(), 1);
    }

    #[test]
    fn capacity_drops_but_counts() {
        let mut log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.record(t(i as f64), 0, EventKind::ThrottleOn);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn kernel_spans_pair_start_and_end() {
        let mut log = EventLog::new();
        let task = TaskId::new(7);
        log.record(
            t(1.0),
            0,
            EventKind::KernelStart {
                task,
                kernel_index: 0,
            },
        );
        log.record(
            t(2.0),
            1,
            EventKind::KernelStart {
                task: TaskId::new(8),
                kernel_index: 0,
            },
        );
        log.record(
            t(3.0),
            0,
            EventKind::KernelEnd {
                task,
                kernel_index: 0,
            },
        );
        log.record(
            t(4.0),
            1,
            EventKind::KernelEnd {
                task: TaskId::new(8),
                kernel_index: 0,
            },
        );
        let spans = log.kernel_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (0, task, 0, t(1.0), t(3.0)));
        assert_eq!(spans[1].4, t(4.0));
    }

    #[test]
    fn throttled_time_sums_intervals() {
        let mut log = EventLog::new();
        log.record(t(1.0), Event::DEVICE, EventKind::ThrottleOn);
        log.record(t(3.0), Event::DEVICE, EventKind::ThrottleOff);
        log.record(t(10.0), Event::DEVICE, EventKind::ThrottleOn);
        log.record(t(11.5), Event::DEVICE, EventKind::ThrottleOff);
        assert!((log.throttled_time().value() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn unterminated_throttle_is_ignored() {
        let mut log = EventLog::new();
        log.record(t(1.0), Event::DEVICE, EventKind::ThrottleOn);
        assert_eq!(log.throttled_time(), Seconds::ZERO);
    }
}
