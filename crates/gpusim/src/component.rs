//! Component/event-heap simulation core.
//!
//! The engine's historical `run` loop was a bespoke single-GPU driver:
//! nothing else — interconnects, CPU-side stages, fleet actors — had a
//! place to plug in. This module generalizes the drive loop to the shape
//! discrete-event simulators converge on: a set of [`Component`]s
//! scheduled by a global min-heap ([`crate::heap::TickHeap`]) keyed by
//! `(time, component_id)`.
//!
//! ## The protocol
//!
//! A component alternates two calls:
//!
//! 1. [`Component::next_tick`] — drain internal zero-cost work at the
//!    current time and **plan** the absolute time of the component's next
//!    internal event (`None` = finished, stay off the heap).
//! 2. [`Component::tick`] — **apply** the planned step once the heap
//!    dispatches it.
//!
//! After each tick the core drains the component's [`Message`] outbox and
//! delivers to the addressees, re-arming any receiver whose horizon may
//! have moved. Ties at the same time are dispatched in component-id
//! order — dispatch order is a pure function of the armed set (pinned by
//! the heap's permutation property test), never of arm order.
//!
//! ## Component-local fast paths
//!
//! The global heap holds **one entry per component**, not one per event.
//! Everything a component can resolve internally stays internal: the
//! engine keeps its [`crate::equeue::MonotoneEventQueue`] arrivals, dense
//! `timer_rem` countdowns and indexed kernel horizons exactly as before,
//! and surfaces only the min over all of them as its `next_tick`. The
//! contract is: a component may bypass the heap for any event that cannot
//! affect another component before its own next tick. That keeps the
//! steady-state hot loop allocation-free (`tests/alloc_gate.rs` drives a
//! [`SimCore`] directly) and the heap depth O(components), not O(events).
//!
//! ## Bit-identity
//!
//! For a solo engine the core issues exactly the
//! `next_tick`/`tick_to` sequence the historical `while step()` loop
//! inlined, and the planned `dt` is stored engine-side rather than
//! recomputed from the heap's absolute time (a `now + dt` → `t - now`
//! float round-trip is not bit-identical). `tests/perf_equivalence.rs`
//! pins legacy-vs-component `RunResult` equality across seeded scenarios;
//! the zoo digests pin it for every checked-in scenario.

use crate::engine::{Engine, EngineStats, RunResult};
use crate::heap::TickHeap;
use mpshare_types::{Error, Result, Seconds};
use std::collections::VecDeque;

/// A payload routed between components by the [`SimCore`] after a tick.
/// Deliberately minimal for the first compositions: a byte count (an
/// interconnect transfer, a completion notification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    /// Sending component id.
    pub from: usize,
    /// Destination component id.
    pub to: usize,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// One simulated actor driven by the global tick heap.
pub trait Component {
    /// Human-readable name for reports and traces.
    fn label(&self) -> &str;

    /// Drains internal zero-cost work at the current time and returns the
    /// absolute time of this component's next internal event, or `None`
    /// when it has nothing left to do. Called once at arm time and again
    /// after every one of the component's own ticks (and after a
    /// horizon-changing [`Component::deliver`]).
    fn next_tick(&mut self) -> Result<Option<f64>>;

    /// Applies the step planned by the preceding [`Component::next_tick`];
    /// `now` is exactly the time that call returned.
    fn tick(&mut self, now: f64) -> Result<()>;

    /// Emits any messages produced since the last drain. Called by the
    /// core after the component's `next_tick` (arm or re-arm), so
    /// completions surfaced during internal transition processing are
    /// routed in the same dispatch round.
    fn drain_outbox(&mut self, _out: &mut Vec<Message>) {}

    /// Receives a message at time `now`. Returns `true` when the
    /// component's next-tick horizon may have changed (the core will call
    /// [`Component::next_tick`] again and re-arm it).
    fn deliver(&mut self, _msg: &Message, _now: f64) -> bool {
        false
    }
}

/// The engine is the first (and for single-GPU runs, only) component:
/// `next_tick` plans one event horizon, `tick` applies it.
impl Component for Engine {
    fn label(&self) -> &str {
        "gpusim-engine"
    }

    fn next_tick(&mut self) -> Result<Option<f64>> {
        Engine::next_tick(self)
    }

    fn tick(&mut self, now: f64) -> Result<()> {
        self.note_component_tick();
        self.tick_to(now)
    }
}

/// Counters from one [`SimCore`] drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Heap pops dispatched as component ticks.
    pub ticks: u64,
    /// Maximum live heap depth observed (≤ component count by design —
    /// one entry per component).
    pub max_heap_depth: u64,
    /// Messages routed between components.
    pub messages: u64,
}

/// The component driver: arms every component on the [`TickHeap`], then
/// repeatedly pops the earliest `(time, component)` entry, ticks it,
/// re-arms it, and routes its outbox.
#[derive(Debug)]
pub struct SimCore {
    heap: TickHeap,
    outbox: Vec<Message>,
    stats: SimStats,
}

impl SimCore {
    pub fn new(components: usize) -> Self {
        SimCore {
            heap: TickHeap::new(components),
            outbox: Vec::new(),
            stats: SimStats::default(),
        }
    }

    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Current live heap depth.
    pub fn depth(&self) -> usize {
        self.heap.depth()
    }

    /// Asks `id` for its next horizon and arms (or disarms) it.
    fn rearm(&mut self, comps: &mut [&mut dyn Component], id: usize) -> Result<()> {
        match comps[id].next_tick()? {
            Some(t) => self.heap.arm(id, t),
            None => self.heap.disarm(id),
        }
        Ok(())
    }

    /// Drains `id`'s outbox and delivers each message, re-arming receivers
    /// that report a horizon change. Messages a component emits from
    /// `deliver` itself are collected at its next drain, not recursively.
    fn dispatch_outbox(
        &mut self,
        comps: &mut [&mut dyn Component],
        id: usize,
        now: f64,
    ) -> Result<()> {
        let mut outbox = std::mem::take(&mut self.outbox);
        outbox.clear();
        comps[id].drain_outbox(&mut outbox);
        for msg in &outbox {
            debug_assert!(
                msg.to < comps.len(),
                "message to unknown component {}",
                msg.to
            );
            self.stats.messages += 1;
            if comps[msg.to].deliver(msg, now) {
                self.rearm(comps, msg.to)?;
            }
        }
        self.outbox = outbox;
        Ok(())
    }

    fn note_depth(&mut self) {
        self.stats.max_heap_depth = self.stats.max_heap_depth.max(self.heap.depth() as u64);
    }

    /// Initial arm pass: every component plans its first horizon (work due
    /// at time zero, e.g. immediate arrivals, is drained and routed here).
    pub fn arm_all(&mut self, comps: &mut [&mut dyn Component]) -> Result<()> {
        for id in 0..comps.len() {
            self.rearm(comps, id)?;
            self.dispatch_outbox(comps, id, 0.0)?;
        }
        self.note_depth();
        Ok(())
    }

    /// Dispatches one heap entry: tick, re-arm, route. Returns `false`
    /// when the heap is empty (every component finished or idle).
    pub fn step(&mut self, comps: &mut [&mut dyn Component]) -> Result<bool> {
        let Some((t, id)) = self.heap.pop() else {
            return Ok(false);
        };
        comps[id].tick(t)?;
        self.stats.ticks += 1;
        self.rearm(comps, id)?;
        self.dispatch_outbox(comps, id, t)?;
        self.note_depth();
        Ok(true)
    }

    /// [`SimCore::arm_all`] then [`SimCore::step`] until the heap drains.
    pub fn run(&mut self, comps: &mut [&mut dyn Component]) -> Result<()> {
        self.arm_all(comps)?;
        while self.step(comps)? {}
        Ok(())
    }
}

/// One queued transfer on a [`SharedLink`].
#[derive(Debug, Clone, Copy)]
struct Transfer {
    to: usize,
    bytes: f64,
}

/// Remaining-time threshold below which a transfer head counts as done
/// (absorbs the float residue of `(rem / bw) * bw`).
const LINK_EPS_SECONDS: f64 = 1e-12;

/// Proof-of-concept shared-bandwidth interconnect: a store-and-forward
/// FIFO link with a fixed bandwidth. Every completed GPU task ships one
/// transfer across it; when a transfer's bytes finish draining, a
/// notification message is forwarded to the routed destination component.
/// Transfers share the link serially (FIFO), so two GPUs completing
/// bursts at once queue behind each other — the first cross-component
/// contention the simulator can express.
#[derive(Debug)]
pub struct SharedLink {
    id: usize,
    label: String,
    /// Bytes per second.
    bandwidth: f64,
    /// Destination component per sending component id
    /// (`usize::MAX` = drop the completed transfer silently).
    dest: Vec<usize>,
    queue: VecDeque<Transfer>,
    /// Bytes left on the queue head.
    head_rem: f64,
    /// Time up to which `head_rem` is accurate.
    clock: f64,
    outbox: Vec<Message>,
    bytes_moved: f64,
    transfers_done: u64,
    busy_seconds: f64,
    last_completion: f64,
    max_queue: usize,
}

impl SharedLink {
    /// A link with component id `id` in a composition of `components`
    /// total components. `bandwidth` is bytes per second.
    pub fn new(id: usize, bandwidth: f64, components: usize) -> Result<Self> {
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(Error::InvalidConfig(format!(
                "link bandwidth must be positive and finite, got {bandwidth}"
            )));
        }
        Ok(SharedLink {
            id,
            label: "shared-link".to_string(),
            bandwidth,
            dest: vec![usize::MAX; components],
            queue: VecDeque::new(),
            head_rem: 0.0,
            clock: 0.0,
            outbox: Vec::new(),
            bytes_moved: 0.0,
            transfers_done: 0,
            busy_seconds: 0.0,
            last_completion: 0.0,
            max_queue: 0,
        })
    }

    /// Completed transfers received from `from` are forwarded to `to`.
    pub fn set_route(&mut self, from: usize, to: usize) {
        self.dest[from] = to;
    }

    /// Advances partial progress on the queue head up to `now`.
    fn advance_to(&mut self, now: f64) {
        if now <= self.clock {
            return;
        }
        if !self.queue.is_empty() {
            let elapsed = now - self.clock;
            let moved = (elapsed * self.bandwidth).min(self.head_rem);
            self.head_rem -= moved;
            self.bytes_moved += moved;
            self.busy_seconds += moved / self.bandwidth;
        }
        self.clock = now;
    }

    /// Accounting snapshot for reports.
    pub fn report(&self) -> LinkReport {
        LinkReport {
            label: self.label.clone(),
            bytes_moved: self.bytes_moved,
            transfers: self.transfers_done,
            busy_seconds: self.busy_seconds,
            last_completion: Seconds::new(self.last_completion),
            max_queue: self.max_queue,
        }
    }
}

impl Component for SharedLink {
    fn label(&self) -> &str {
        &self.label
    }

    fn next_tick(&mut self) -> Result<Option<f64>> {
        if self.queue.is_empty() {
            Ok(None)
        } else {
            Ok(Some(self.clock + self.head_rem / self.bandwidth))
        }
    }

    fn tick(&mut self, now: f64) -> Result<()> {
        self.advance_to(now);
        while let Some(&head) = self.queue.front() {
            if self.head_rem / self.bandwidth > LINK_EPS_SECONDS {
                break;
            }
            self.queue.pop_front();
            self.transfers_done += 1;
            self.last_completion = now;
            if head.to != usize::MAX {
                self.outbox.push(Message {
                    from: self.id,
                    to: head.to,
                    bytes: head.bytes,
                });
            }
            if let Some(next) = self.queue.front() {
                self.head_rem = next.bytes;
            } else {
                self.head_rem = 0.0;
            }
        }
        Ok(())
    }

    fn drain_outbox(&mut self, out: &mut Vec<Message>) {
        out.append(&mut self.outbox);
    }

    fn deliver(&mut self, msg: &Message, now: f64) -> bool {
        self.advance_to(now);
        let was_empty = self.queue.is_empty();
        self.queue.push_back(Transfer {
            to: self.dest[msg.from],
            bytes: msg.bytes,
        });
        if was_empty {
            self.head_rem = msg.bytes;
        }
        self.max_queue = self.max_queue.max(self.queue.len());
        // An idle link just became busy; a busy link's head (and hence its
        // horizon) is unchanged, but re-arming recomputes the same time.
        was_empty
    }
}

/// Link accounting from one composition run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    pub label: String,
    /// Bytes drained across the link.
    pub bytes_moved: f64,
    /// Transfers fully completed.
    pub transfers: u64,
    /// Seconds the link spent draining bytes.
    pub busy_seconds: f64,
    /// Time the last transfer completed.
    pub last_completion: Seconds,
    /// Deepest FIFO backlog observed.
    pub max_queue: usize,
}

/// A GPU in a composition: wraps an [`Engine`] and ships one transfer of
/// `bytes_per_task` over the link per completed task.
#[derive(Debug)]
pub struct GpuComponent {
    id: usize,
    label: String,
    engine: Engine,
    link: usize,
    bytes_per_task: f64,
    sent: usize,
    received_transfers: u64,
    received_bytes: f64,
}

impl GpuComponent {
    pub fn new(id: usize, label: String, engine: Engine, link: usize, bytes_per_task: f64) -> Self {
        GpuComponent {
            id,
            label,
            engine,
            link,
            bytes_per_task,
            sent: 0,
            received_transfers: 0,
            received_bytes: 0.0,
        }
    }

    /// Finalizes the wrapped engine into a per-GPU outcome.
    fn finish(self, heap_max_depth: u64) -> Result<GpuOutcome> {
        let mut engine = self.engine;
        engine.note_heap_max_depth(heap_max_depth);
        let (result, stats) = engine.into_result()?;
        Ok(GpuOutcome {
            label: self.label,
            result,
            stats,
            sent_transfers: self.sent as u64,
            received_transfers: self.received_transfers,
            received_bytes: self.received_bytes,
        })
    }
}

impl Component for GpuComponent {
    fn label(&self) -> &str {
        &self.label
    }

    fn next_tick(&mut self) -> Result<Option<f64>> {
        self.engine.next_tick()
    }

    fn tick(&mut self, now: f64) -> Result<()> {
        self.engine.note_component_tick();
        self.engine.tick_to(now)
    }

    fn drain_outbox(&mut self, out: &mut Vec<Message>) {
        let done = self.engine.tasks_completed_so_far();
        while self.sent < done {
            self.sent += 1;
            if self.bytes_per_task > 0.0 {
                out.push(Message {
                    from: self.id,
                    to: self.link,
                    bytes: self.bytes_per_task,
                });
            }
        }
    }

    fn deliver(&mut self, msg: &Message, _now: f64) -> bool {
        // Completion notifications from the link are counted, not acted
        // on: receiving them never moves the engine's horizon.
        self.received_transfers += 1;
        self.received_bytes += msg.bytes;
        false
    }
}

/// Per-GPU results from a composition run.
#[derive(Debug)]
pub struct GpuOutcome {
    pub label: String,
    pub result: RunResult,
    pub stats: EngineStats,
    /// Transfers this GPU shipped onto the link.
    pub sent_transfers: u64,
    /// Completion notifications forwarded to this GPU by the link.
    pub received_transfers: u64,
    pub received_bytes: f64,
}

/// Results from a [`Composition`] run.
#[derive(Debug)]
pub struct CompositionOutcome {
    pub gpus: Vec<GpuOutcome>,
    pub link: LinkReport,
    /// Max over GPU makespans and the link's last transfer completion.
    pub makespan: Seconds,
    pub sim: SimStats,
}

/// The first multi-component scenario: N GPU engines sharing one
/// fixed-bandwidth interconnect, each shipping a transfer per completed
/// task to its ring successor. Proof that the component seam is real —
/// two engines and a link advance interleaved through one global heap in
/// a single run.
#[derive(Debug)]
pub struct Composition {
    gpus: Vec<GpuComponent>,
    link: SharedLink,
}

impl Composition {
    /// Builds a composition of `engines` (label, engine) around one shared
    /// link of `link_bandwidth` bytes/s; every completed task ships
    /// `bytes_per_task` bytes to the next GPU in ring order.
    pub fn new(
        engines: Vec<(String, Engine)>,
        link_bandwidth: f64,
        bytes_per_task: f64,
    ) -> Result<Self> {
        if engines.is_empty() {
            return Err(Error::InvalidConfig(
                "a composition needs at least one GPU".into(),
            ));
        }
        if !(bytes_per_task.is_finite() && bytes_per_task >= 0.0) {
            return Err(Error::InvalidConfig(format!(
                "bytes_per_task must be finite and non-negative, got {bytes_per_task}"
            )));
        }
        let n = engines.len();
        let link_id = n;
        let mut link = SharedLink::new(link_id, link_bandwidth, n + 1)?;
        for g in 0..n {
            link.set_route(g, (g + 1) % n);
        }
        let gpus = engines
            .into_iter()
            .enumerate()
            .map(|(id, (label, engine))| {
                GpuComponent::new(id, label, engine, link_id, bytes_per_task)
            })
            .collect();
        Ok(Composition { gpus, link })
    }

    /// Runs every component to completion through one shared tick heap.
    pub fn run(mut self) -> Result<CompositionOutcome> {
        let n = self.gpus.len();
        let mut core = SimCore::new(n + 1);
        {
            let mut comps: Vec<&mut dyn Component> = Vec::with_capacity(n + 1);
            for g in &mut self.gpus {
                comps.push(g);
            }
            comps.push(&mut self.link);
            core.run(&mut comps)?;
        }
        let sim = core.stats();
        let link = self.link.report();
        let mut makespan = link.last_completion.value();
        let mut gpus = Vec::with_capacity(n);
        for g in self.gpus {
            let outcome = g.finish(sim.max_heap_depth)?;
            makespan = makespan.max(outcome.result.makespan.value());
            gpus.push(outcome);
        }
        Ok(CompositionOutcome {
            gpus,
            link,
            makespan: Seconds::new(makespan),
            sim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::engine::{EngineConfig, SharingMode};
    use crate::kernel::{KernelSpec, LaunchConfig};
    use crate::program::{ClientProgram, TaskProgram};
    use mpshare_types::{Fraction, MemBytes, TaskId};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn kernel(dur: f64, sm: f64, bw: f64, gap: f64) -> KernelSpec {
        KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 64, 1024),
            Seconds::new(dur),
        )
        .with_sm_demand(Fraction::new(sm))
        .with_bw_demand(Fraction::new(bw))
        .with_host_gap(Seconds::new(gap))
    }

    fn client(label: &str, id: u64, tasks: usize) -> ClientProgram {
        let mut c = ClientProgram::new(label);
        for k in 0..tasks {
            let mut t = TaskProgram::new(
                TaskId::new(id * 10 + k as u64),
                label,
                MemBytes::from_mib(512),
            );
            t.push_kernel(kernel(1.0 + 0.25 * k as f64, 0.5, 0.2, 0.1));
            c.push_task(t);
        }
        c
    }

    fn engine(clients: usize) -> Engine {
        let programs: Vec<ClientProgram> = (0..clients)
            .map(|i| client(&format!("c{i}"), i as u64, 2))
            .collect();
        Engine::new(
            EngineConfig::new(dev(), SharingMode::mps_uniform(clients)),
            programs,
        )
        .unwrap()
    }

    #[test]
    fn solo_engine_through_simcore_matches_legacy_loop() {
        let legacy = {
            let programs: Vec<ClientProgram> = (0..3)
                .map(|i| client(&format!("c{i}"), i as u64, 2))
                .collect();
            Engine::new(
                EngineConfig::new(dev(), SharingMode::mps_uniform(3)).with_legacy_loop(true),
                programs,
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let component = engine(3).run().unwrap();
        assert_eq!(
            serde_json::to_string(&component).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "component core must be bit-identical to the legacy loop"
        );
    }

    #[test]
    fn solo_engine_stats_expose_ticks_and_depth() {
        let (result, stats) = engine(2).run_with_stats().unwrap();
        assert!(result.tasks_completed > 0);
        assert_eq!(
            stats.ticks, stats.events,
            "a solo engine gets exactly one heap tick per event"
        );
        assert_eq!(stats.heap_max_depth, 1, "one component, one live entry");

        let programs: Vec<ClientProgram> = (0..2)
            .map(|i| client(&format!("c{i}"), i as u64, 2))
            .collect();
        let (_, legacy_stats) = Engine::new(
            EngineConfig::new(dev(), SharingMode::mps_uniform(2)).with_legacy_loop(true),
            programs,
        )
        .unwrap()
        .run_with_stats()
        .unwrap();
        assert_eq!(legacy_stats.ticks, 0, "legacy loop never touches the heap");
        assert_eq!(legacy_stats.heap_max_depth, 0);
    }

    #[test]
    fn two_gpus_and_a_link_compose_end_to_end() {
        let bytes_per_task = 64.0 * 1024.0 * 1024.0;
        let bandwidth = 512.0 * 1024.0 * 1024.0; // slow enough to queue
        let composition = Composition::new(
            vec![
                ("gpu0".to_string(), engine(2)),
                ("gpu1".to_string(), engine(3)),
            ],
            bandwidth,
            bytes_per_task,
        )
        .unwrap();
        let outcome = composition.run().unwrap();

        let total_tasks: usize = outcome.gpus.iter().map(|g| g.result.tasks_completed).sum();
        assert!(total_tasks > 0);
        assert_eq!(
            outcome.link.transfers, total_tasks as u64,
            "every completed task ships exactly one transfer"
        );
        let expected_bytes = bytes_per_task * total_tasks as f64;
        assert!(
            (outcome.link.bytes_moved - expected_bytes).abs() <= 1.0,
            "link moved {} bytes, expected {expected_bytes}",
            outcome.link.bytes_moved
        );
        // Ring routing: gpu0's completions land on gpu1 and vice versa.
        let sent: u64 = outcome.gpus.iter().map(|g| g.sent_transfers).sum();
        let received: u64 = outcome.gpus.iter().map(|g| g.received_transfers).sum();
        assert_eq!(sent, total_tasks as u64);
        assert_eq!(received, total_tasks as u64);
        assert_eq!(
            outcome.gpus[0].received_transfers,
            outcome.gpus[1].sent_transfers
        );

        // The last notification cannot land before the last task finishes.
        assert!(outcome.makespan.value() >= outcome.link.last_completion.value());
        assert!(
            outcome.link.last_completion.value()
                > outcome
                    .gpus
                    .iter()
                    .map(|g| g.result.makespan.value())
                    .fold(0.0, f64::max)
                    - 1e-9,
            "transfers drain at or after the engine makespans"
        );

        // Heap/tick metrics prove the interleave: all three components
        // ticked, and the heap held more than one live entry at once.
        assert!(outcome.sim.ticks > 0);
        assert!(outcome.sim.max_heap_depth >= 2);
        assert!(outcome.sim.max_heap_depth <= 3);
        assert!(outcome.gpus.iter().all(|g| g.stats.ticks > 0));
        assert_eq!(
            outcome.sim.messages,
            2 * total_tasks as u64,
            "one GPU→link and one link→GPU message per task"
        );
    }

    #[test]
    fn composition_gpu_results_match_solo_runs() {
        // The link is a pure observer (messages never stall an engine), so
        // each GPU's RunResult must be bit-identical to running it alone.
        let solo0 = engine(2).run().unwrap();
        let solo1 = engine(3).run().unwrap();
        let outcome = Composition::new(
            vec![
                ("gpu0".to_string(), engine(2)),
                ("gpu1".to_string(), engine(3)),
            ],
            1e9,
            1e6,
        )
        .unwrap()
        .run()
        .unwrap();
        assert_eq!(
            serde_json::to_string(&outcome.gpus[0].result).unwrap(),
            serde_json::to_string(&solo0).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&outcome.gpus[1].result).unwrap(),
            serde_json::to_string(&solo1).unwrap()
        );
    }

    #[test]
    fn fifo_link_serializes_contending_bursts() {
        // Two instant transfers delivered back to back at t=0 drain
        // serially: 2 × (bytes / bw).
        let mut link = SharedLink::new(2, 100.0, 3).unwrap();
        link.set_route(0, usize::MAX);
        link.set_route(1, usize::MAX);
        assert!(link.deliver(
            &Message {
                from: 0,
                to: 2,
                bytes: 100.0
            },
            0.0
        ));
        assert!(!link.deliver(
            &Message {
                from: 1,
                to: 2,
                bytes: 100.0
            },
            0.0
        ));
        let t1 = Component::next_tick(&mut link).unwrap().unwrap();
        assert!((t1 - 1.0).abs() < 1e-9);
        Component::tick(&mut link, t1).unwrap();
        let t2 = Component::next_tick(&mut link).unwrap().unwrap();
        assert!((t2 - 2.0).abs() < 1e-9);
        Component::tick(&mut link, t2).unwrap();
        assert!(Component::next_tick(&mut link).unwrap().is_none());
        let report = link.report();
        assert_eq!(report.transfers, 2);
        assert_eq!(report.max_queue, 2);
        assert!((report.busy_seconds - 2.0).abs() < 1e-9);
        assert!((report.bytes_moved - 200.0).abs() < 1e-9);
    }
}
