//! `mpshare-gpusim` — a discrete-event GPU simulator.
//!
//! This crate is the hardware substrate for the `mpshare` reproduction of
//! *"Granularity- and Interference-Aware GPU Sharing with MPS"* (SC 2024).
//! The paper's evaluation ran on NVIDIA A100X GPUs; this simulator stands in
//! for that hardware and reproduces the first-order behaviours the paper's
//! scheduling results depend on:
//!
//! * **Occupancy-limited parallelism** — a faithful CUDA occupancy
//!   calculator ([`occupancy`]) derives how many thread blocks fit on an SM
//!   from the launch configuration and device limits, and wave-quantized
//!   block scheduling produces the saturating, non-linear
//!   throughput-vs-partition curves of the paper's Figure 1.
//! * **Interference** — device memory bandwidth is a shared resource with
//!   proportional contention, SM allocations are capped by MPS partitions
//!   and scaled under oversubscription, and an optional cache-pressure model
//!   slows co-running kernels ([`contention`]).
//! * **Power and DVFS** — power is a linear function of SM and bandwidth
//!   utilization plus idle draw; when total draw exceeds the software power
//!   cap (300 W on the A100X) the clock is throttled so the cap holds, and
//!   the time spent capped is accounted ([`power`]) — the paper's Figure 3.
//! * **Energy** — power is integrated piecewise-exactly over the simulation,
//!   so idle-power amortization (the paper's main energy-efficiency driver)
//!   is emergent.
//!
//! The engine ([`engine`]) is a piecewise-constant-rate discrete-event
//! simulator: between events the set of resident kernels is fixed, so every
//! kernel's progress rate is constant and the next completion time is exact.
//! No time-stepping error, fully deterministic.

pub mod component;
pub mod contention;
pub mod device;
pub mod engine;
mod equeue;
pub mod events;
pub mod fault;
pub mod heap;
pub mod invariant;
pub mod kernel;
pub mod occupancy;
pub mod power;
pub mod program;
pub mod telemetry;

pub use component::{
    Component, Composition, CompositionOutcome, GpuComponent, GpuOutcome, LinkReport, Message,
    SharedLink, SimCore, SimStats,
};
pub use contention::{Allocation, ContentionSolver, PreparedContender, SolveScratch};
pub use device::DeviceSpec;
pub use engine::{
    ClientOutcome, Engine, EngineConfig, EngineScratch, EngineStats, RunResult, SharingMode,
};
pub use events::{Event, EventKind, EventLog};
pub use fault::{unit_hash, FaultPlan, FaultRecord, FaultScope, FaultSpec};
pub use heap::TickHeap;
pub use kernel::{KernelSpec, LaunchConfig};
pub use occupancy::{OccupancyLimits, OccupancyReport};
pub use power::{PowerModel, PowerState};
pub use program::{ClientProgram, TaskProgram, ValidatedPrograms};
pub use telemetry::{Segment, Telemetry};
