//! CUDA occupancy calculator.
//!
//! Implements the same resource-limit arithmetic as NVIDIA's occupancy
//! calculator: the number of thread blocks resident on one SM is the
//! minimum over four per-SM limits (blocks, warps/threads, registers,
//! shared memory), and **theoretical occupancy** is the resulting resident
//! warp count divided by the SM's warp capacity (paper §II-C).
//!
//! **Achieved occupancy** is modeled from load balance: a kernel that
//! launches too few blocks to fill every SM in every wave leaves warp slots
//! empty, and partially-filled tail waves drag the average down — the same
//! "load balancing and number of blocks launched" factors the paper cites.

use crate::device::DeviceSpec;
use crate::kernel::LaunchConfig;
use mpshare_types::Percent;
use serde::{Deserialize, Serialize};

/// Which per-SM resource bounds the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// Hardware cap on resident blocks per SM.
    BlocksPerSm,
    /// Warp-slot (or, equivalently, thread) capacity.
    Warps,
    /// Register-file capacity.
    Registers,
    /// Shared-memory capacity.
    SharedMemory,
    /// The grid is too small to fill even one SM's block slots.
    GridSize,
}

/// Per-SM residency limits for one launch configuration on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyLimits {
    /// Resident blocks allowed by the block-count cap.
    pub by_blocks: u32,
    /// Resident blocks allowed by warp/thread capacity.
    pub by_warps: u32,
    /// Resident blocks allowed by the register file.
    pub by_registers: u32,
    /// Resident blocks allowed by shared memory.
    pub by_shared_mem: u32,
}

impl OccupancyLimits {
    /// The binding limit: resident blocks per SM.
    pub fn blocks_per_sm(&self) -> u32 {
        self.by_blocks
            .min(self.by_warps)
            .min(self.by_registers)
            .min(self.by_shared_mem)
    }

    /// Which resource is binding (ties broken in the order the hardware
    /// documentation lists them: blocks, warps, registers, shared memory).
    pub fn limiter(&self) -> OccupancyLimiter {
        let min = self.blocks_per_sm();
        if self.by_blocks == min {
            OccupancyLimiter::BlocksPerSm
        } else if self.by_warps == min {
            OccupancyLimiter::Warps
        } else if self.by_registers == min {
            OccupancyLimiter::Registers
        } else {
            OccupancyLimiter::SharedMemory
        }
    }
}

/// Full occupancy analysis of a launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyReport {
    /// Per-resource residency limits.
    pub limits: OccupancyLimits,
    /// Resident blocks per SM (the min over limits, ≥ 0).
    pub blocks_per_sm: u32,
    /// Warps per block for this launch.
    pub warps_per_block: u32,
    /// Upper bound on active warps per SM as a percentage of capacity.
    pub theoretical: Percent,
    /// Modeled average achieved occupancy (≤ theoretical).
    pub achieved: Percent,
    /// Number of full device waves the grid needs.
    pub waves: u32,
}

/// Computes warps per block (threads rounded up to whole warps).
pub fn warps_per_block(device: &DeviceSpec, launch: &LaunchConfig) -> u32 {
    launch.threads_per_block.div_ceil(device.warp_size)
}

/// Per-SM residency limits for `launch` on `device`.
///
/// Register allocation is per-warp with the device's allocation
/// granularity; shared memory is rounded up to its allocation unit —
/// matching the CUDA occupancy calculator's arithmetic.
pub fn limits(device: &DeviceSpec, launch: &LaunchConfig) -> OccupancyLimits {
    let wpb = warps_per_block(device, launch);

    let by_blocks = device.max_blocks_per_sm;

    let by_thread_cap = device.max_threads_per_sm / launch.threads_per_block.max(1);
    let by_warp_cap = device.max_warps_per_sm / wpb.max(1);
    let by_warps = by_thread_cap.min(by_warp_cap);

    let by_registers = if launch.regs_per_thread == 0 {
        u32::MAX
    } else {
        // Registers are allocated per warp, rounded to the allocation unit.
        let regs_per_warp = launch.regs_per_thread * device.warp_size;
        let granule = device.register_alloc_unit.max(1);
        let regs_per_warp = regs_per_warp.div_ceil(granule) * granule;
        let regs_per_block = regs_per_warp as u64 * wpb as u64;
        (device.registers_per_sm as u64)
            .checked_div(regs_per_block)
            .map_or(u32::MAX, |blocks| blocks as u32)
    };

    let by_shared_mem = if launch.shared_mem_per_block == 0 {
        u32::MAX
    } else {
        let granule = device.shared_mem_alloc_unit.max(1);
        let smem = launch.shared_mem_per_block.div_ceil(granule) * granule;
        (device.shared_mem_per_sm / smem) as u32
    };

    OccupancyLimits {
        by_blocks,
        by_warps,
        by_registers,
        by_shared_mem,
    }
}

/// Full occupancy report: theoretical occupancy from the residency limits,
/// achieved occupancy from grid-level load balance.
///
/// ```
/// use mpshare_gpusim::{occupancy, DeviceSpec, LaunchConfig};
///
/// // 1024-thread blocks (32 warps): two fill an A100 SM completely.
/// let device = DeviceSpec::a100x();
/// let report = occupancy::report(&device, &LaunchConfig::dense(10_000, 1024));
/// assert_eq!(report.blocks_per_sm, 2);
/// assert_eq!(report.theoretical.value(), 100.0);
/// ```
pub fn report(device: &DeviceSpec, launch: &LaunchConfig) -> OccupancyReport {
    let lims = limits(device, launch);
    let blocks_per_sm = lims.blocks_per_sm();
    let wpb = warps_per_block(device, launch);

    let theoretical = if blocks_per_sm == 0 {
        Percent::ZERO
    } else {
        let resident_warps = (blocks_per_sm * wpb).min(device.max_warps_per_sm);
        Percent::from_fraction(resident_warps as f64 / device.max_warps_per_sm as f64)
    };

    // Achieved occupancy: average resident warps over the kernel's
    // execution, accounting for the partially filled final wave and for
    // grids smaller than one wave. `efficiency` is the mean fraction of the
    // per-wave block capacity that is actually occupied.
    let capacity_per_wave = (device.num_sms as u64 * blocks_per_sm as u64).max(1);
    let grid = launch.grid_blocks as u64;
    let waves = grid.div_ceil(capacity_per_wave).max(1) as u32;
    let efficiency = grid as f64 / (waves as u64 * capacity_per_wave) as f64;

    // Issue efficiency models intra-kernel stalls (dependencies, memory
    // latency) that keep achieved occupancy below the resident-warp bound
    // even for perfectly balanced grids.
    let achieved =
        Percent::clamped(theoretical.value() * efficiency * launch.issue_efficiency.value());

    OccupancyReport {
        limits: lims,
        blocks_per_sm,
        warps_per_block: wpb,
        theoretical,
        achieved,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::Fraction;

    fn launch(grid: u32, tpb: u32, regs: u32, smem: u64) -> LaunchConfig {
        LaunchConfig {
            grid_blocks: grid,
            threads_per_block: tpb,
            regs_per_thread: regs,
            shared_mem_per_block: smem,
            issue_efficiency: Fraction::ONE,
        }
    }

    #[test]
    fn full_occupancy_when_nothing_binds() {
        // 1024 threads/block = 32 warps; 2 blocks fill the 64-warp SM.
        let d = DeviceSpec::a100x();
        let r = report(&d, &launch(10_000, 1024, 32, 0));
        assert_eq!(r.warps_per_block, 32);
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.theoretical, Percent::HUNDRED);
    }

    #[test]
    fn register_limit_binds() {
        // 255 regs/thread: regs/warp = 8160 -> rounded 8192; 64 warps would
        // need 524288 regs but only 65536 exist -> 8 warps -> with 1 warp
        // per block (32 threads), 8 blocks resident.
        let d = DeviceSpec::a100x();
        let r = report(&d, &launch(100_000, 32, 255, 0));
        assert_eq!(r.limits.by_registers, 8);
        assert_eq!(r.limits.limiter(), OccupancyLimiter::Registers);
        assert_eq!(r.blocks_per_sm, 8);
        assert_eq!(r.theoretical, Percent::new(12.5));
    }

    #[test]
    fn shared_memory_limit_binds() {
        // 48 KiB smem/block on a 164 KiB SM -> 3 blocks.
        let d = DeviceSpec::a100x();
        let r = report(&d, &launch(100_000, 128, 32, 48 * 1024));
        assert_eq!(r.limits.by_shared_mem, 3);
        assert_eq!(r.blocks_per_sm, 3);
        assert_eq!(r.limits.limiter(), OccupancyLimiter::SharedMemory);
        // 3 blocks * 4 warps = 12 / 64 warps.
        assert_eq!(r.theoretical, Percent::new(12.0 / 64.0 * 100.0));
    }

    #[test]
    fn block_cap_binds_for_tiny_blocks() {
        // 32-thread blocks, no other pressure: 32-block cap binds before the
        // 64-warp cap.
        let d = DeviceSpec::a100x();
        let r = report(&d, &launch(100_000, 32, 16, 0));
        assert_eq!(r.blocks_per_sm, 32);
        assert_eq!(r.limits.limiter(), OccupancyLimiter::BlocksPerSm);
        assert_eq!(r.theoretical, Percent::new(50.0));
    }

    #[test]
    fn warp_cap_binds_for_large_blocks() {
        let d = DeviceSpec::a100x();
        // 512 threads = 16 warps per block; 64/16 = 4 blocks.
        let r = report(&d, &launch(100_000, 512, 32, 0));
        assert_eq!(r.limits.by_warps, 4);
        assert_eq!(r.blocks_per_sm, 4);
        assert_eq!(r.theoretical, Percent::HUNDRED);
    }

    #[test]
    fn small_grid_lowers_achieved_not_theoretical() {
        let d = DeviceSpec::a100x();
        // One block per SM possible (2 resident), but only 27 blocks
        // launched on a 108-SM device: achieved = 27/216 of theoretical.
        let r = report(&d, &launch(27, 1024, 32, 0));
        assert_eq!(r.theoretical, Percent::HUNDRED);
        assert_eq!(r.waves, 1);
        let expected = 100.0 * 27.0 / 216.0;
        assert!((r.achieved.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn tail_wave_drags_achieved_down() {
        let d = DeviceSpec::a100x();
        // Capacity per wave = 108 SMs * 2 blocks = 216. A 217-block grid
        // needs 2 waves at 217/432 efficiency.
        let r = report(&d, &launch(217, 1024, 32, 0));
        assert_eq!(r.waves, 2);
        let expected = 100.0 * 217.0 / 432.0;
        assert!((r.achieved.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn issue_efficiency_scales_achieved() {
        let d = DeviceSpec::a100x();
        let mut l = launch(216 * 4, 1024, 32, 0);
        l.issue_efficiency = Fraction::new(0.5);
        let r = report(&d, &l);
        assert_eq!(r.theoretical, Percent::HUNDRED);
        assert!((r.achieved.value() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn achieved_never_exceeds_theoretical() {
        let d = DeviceSpec::a100x();
        for (grid, tpb, regs, smem) in [
            (1u32, 32u32, 0u32, 0u64),
            (1000, 256, 64, 1024),
            (216, 1024, 32, 0),
            (7, 96, 200, 100_000),
        ] {
            let r = report(&d, &launch(grid, tpb, regs, smem));
            assert!(
                r.achieved.value() <= r.theoretical.value() + 1e-9,
                "achieved {} > theoretical {} for grid {grid}",
                r.achieved,
                r.theoretical
            );
        }
    }

    #[test]
    fn oversized_shared_memory_gives_zero_occupancy() {
        let d = DeviceSpec::a100x();
        let r = report(&d, &launch(100, 128, 32, 200 * 1024));
        assert_eq!(r.blocks_per_sm, 0);
        assert_eq!(r.theoretical, Percent::ZERO);
        assert_eq!(r.achieved, Percent::ZERO);
    }
}
