//! Telemetry: piecewise-exact integration of utilization, power and energy.
//!
//! The engine appends one [`Segment`] per piecewise-constant interval of
//! the simulation. Because rates, utilizations and power are constant
//! within a segment, time integrals (energy, average utilization, capped
//! time) are exact sums — no sampling error. A `nvidia-smi`-style sampler
//! is provided on top for the profiler crate to cross-validate against.

use mpshare_types::{Energy, Percent, Power, Seconds};
use serde::{Deserialize, Serialize};

/// One piecewise-constant interval of GPU state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time.
    pub start: Seconds,
    /// Segment end time (`> start` except for degenerate zero-length
    /// segments, which the recorder drops).
    pub end: Seconds,
    /// Device SM-throughput utilization in `[0, 1]`.
    pub sm_util: f64,
    /// Device memory-bandwidth utilization in `[0, 1]`.
    pub bw_util: f64,
    /// Board power draw.
    pub power: Power,
    /// Clock factor (1.0 = nominal; < 1 = SW power cap active).
    pub clock_factor: f64,
    /// Whether the SW power cap throttled this segment.
    pub capped: bool,
    /// Number of clients with a kernel resident on the GPU.
    pub active_clients: usize,
}

impl Segment {
    pub fn duration(&self) -> Seconds {
        self.end.saturating_sub(self.start)
    }

    pub fn energy(&self) -> Energy {
        self.power * self.duration()
    }
}

/// Accumulated telemetry of one engine run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Telemetry {
    segments: Vec<Segment>,
}

impl Telemetry {
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// An empty telemetry with room for `capacity` segments — engines
    /// recycling buffers pass the previous run's segment count so a
    /// comparable run never reallocates mid-flight.
    pub fn with_capacity(capacity: usize) -> Self {
        Telemetry {
            segments: Vec::with_capacity(capacity),
        }
    }

    /// Records a segment; zero-length segments are dropped.
    pub fn record(&mut self, segment: Segment) {
        if segment.end > segment.start {
            debug_assert!(
                self.segments
                    .last()
                    .is_none_or(|prev| segment.start >= prev.end),
                "segments must be appended in time order"
            );
            self.segments.push(segment);
        }
    }

    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total covered wall-clock time.
    pub fn total_time(&self) -> Seconds {
        self.segments.iter().map(|s| s.duration()).sum()
    }

    /// Exact integral of power over time.
    pub fn total_energy(&self) -> Energy {
        self.segments.iter().map(|s| s.energy()).sum()
    }

    /// Time-weighted average power (zero if no time has passed).
    pub fn avg_power(&self) -> Power {
        let t = self.total_time();
        if t == Seconds::ZERO {
            Power::ZERO
        } else {
            self.total_energy() / t
        }
    }

    /// Time-weighted average SM utilization.
    pub fn avg_sm_util(&self) -> Percent {
        self.time_weighted_avg(|s| s.sm_util)
    }

    /// Time-weighted average memory-bandwidth utilization.
    pub fn avg_bw_util(&self) -> Percent {
        self.time_weighted_avg(|s| s.bw_util)
    }

    /// Wall-clock time during which the SW power cap throttled the clock —
    /// the numerator of the paper's Figure 3 metric.
    pub fn capped_time(&self) -> Seconds {
        self.segments
            .iter()
            .filter(|s| s.capped)
            .map(|s| s.duration())
            .sum()
    }

    /// Fraction of time spent power-capped.
    pub fn capped_fraction(&self) -> f64 {
        let total = self.total_time();
        if total == Seconds::ZERO {
            0.0
        } else {
            self.capped_time() / total
        }
    }

    /// Wall-clock time during which no kernel was resident (GPU idle).
    pub fn idle_time(&self) -> Seconds {
        self.segments
            .iter()
            .filter(|s| s.active_clients == 0)
            .map(|s| s.duration())
            .sum()
    }

    /// GPU-busy fraction (any kernel resident).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.total_time();
        if total == Seconds::ZERO {
            0.0
        } else {
            1.0 - self.idle_time() / total
        }
    }

    /// Exact SM-utilization time integral `Σ sm_util·dt` in
    /// utilization-seconds (the numerator of `avg_sm_util`, undivided —
    /// summable across runs for fleet-style roll-ups).
    pub fn utilization_integral(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.sm_util * s.duration().value())
            .sum()
    }

    /// Stranded-capacity integral: `Σ (1 − sm_util)·dt` — the
    /// SM-seconds the device left on the table over this run. Exact,
    /// since `sm_util ≤ 1` within every segment.
    pub fn stranded_sm_seconds(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| (1.0 - s.sm_util).max(0.0) * s.duration().value())
            .sum()
    }

    fn time_weighted_avg(&self, f: impl Fn(&Segment) -> f64) -> Percent {
        let total = self.total_time();
        if total == Seconds::ZERO {
            return Percent::ZERO;
        }
        let integral: f64 = self
            .segments
            .iter()
            .map(|s| f(s) * s.duration().value())
            .sum();
        Percent::clamped(integral / total.value() * 100.0)
    }

    /// Produces `nvidia-smi dmon`-style samples at a fixed interval: the
    /// instantaneous state at each sample time. Used by the profiler to
    /// emulate the SMI query path and cross-check the exact integrals.
    pub fn sample(&self, interval: Seconds) -> Vec<SmiSample> {
        assert!(interval.value() > 0.0, "sampling interval must be positive");
        let mut samples = Vec::new();
        let Some(last) = self.segments.last() else {
            return samples;
        };
        let end = last.end;
        let mut t = Seconds::ZERO;
        let mut idx = 0usize;
        while t < end {
            while idx < self.segments.len() && self.segments[idx].end <= t {
                idx += 1;
            }
            if idx >= self.segments.len() {
                break;
            }
            let s = &self.segments[idx];
            // Samples that land in a gap between segments (shouldn't happen
            // with a well-formed engine trace) report the next segment.
            samples.push(SmiSample {
                time: t,
                sm_util: Percent::clamped(s.sm_util * 100.0),
                bw_util: Percent::clamped(s.bw_util * 100.0),
                power: s.power,
                capped: s.capped,
            });
            t += interval;
        }
        samples
    }
}

/// One `nvidia-smi`-style sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmiSample {
    pub time: Seconds,
    pub sm_util: Percent,
    pub bw_util: Percent,
    pub power: Power,
    pub capped: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start: f64, end: f64, sm: f64, bw: f64, power: f64, capped: bool, n: usize) -> Segment {
        Segment {
            start: Seconds::new(start),
            end: Seconds::new(end),
            sm_util: sm,
            bw_util: bw,
            power: Power::from_watts(power),
            clock_factor: if capped { 0.8 } else { 1.0 },
            capped,
            active_clients: n,
        }
    }

    fn sample_telemetry() -> Telemetry {
        let mut t = Telemetry::new();
        t.record(seg(0.0, 2.0, 0.5, 0.2, 100.0, false, 1));
        t.record(seg(2.0, 3.0, 1.0, 0.8, 300.0, true, 2));
        t.record(seg(3.0, 5.0, 0.0, 0.0, 75.0, false, 0));
        t
    }

    #[test]
    fn totals_integrate_exactly() {
        let t = sample_telemetry();
        assert_eq!(t.total_time().value(), 5.0);
        assert_eq!(t.total_energy().joules(), 200.0 + 300.0 + 150.0);
        assert_eq!(t.avg_power().watts(), 650.0 / 5.0);
    }

    #[test]
    fn averages_are_time_weighted() {
        let t = sample_telemetry();
        // (0.5*2 + 1.0*1 + 0*2) / 5 = 0.4 -> 40%
        assert!((t.avg_sm_util().value() - 40.0).abs() < 1e-9);
        // (0.2*2 + 0.8*1) / 5 = 0.24 -> 24%
        assert!((t.avg_bw_util().value() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_stranded_integrals_are_exact_complements() {
        let t = sample_telemetry();
        // 0.5*2 + 1.0*1 + 0*2 = 2.0 utilization-seconds.
        assert!((t.utilization_integral() - 2.0).abs() < 1e-12);
        // Stranded complements it over the covered time.
        assert!((t.stranded_sm_seconds() - 3.0).abs() < 1e-12);
        assert!(
            (t.utilization_integral() + t.stranded_sm_seconds() - t.total_time().value()).abs()
                < 1e-12
        );
    }

    #[test]
    fn capped_and_idle_accounting() {
        let t = sample_telemetry();
        assert_eq!(t.capped_time().value(), 1.0);
        assert!((t.capped_fraction() - 0.2).abs() < 1e-12);
        assert_eq!(t.idle_time().value(), 2.0);
        assert!((t.busy_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_length_segments_are_dropped() {
        let mut t = Telemetry::new();
        t.record(seg(1.0, 1.0, 0.5, 0.5, 100.0, false, 1));
        assert!(t.is_empty());
        assert_eq!(t.avg_power(), Power::ZERO);
        assert_eq!(t.avg_sm_util(), Percent::ZERO);
        assert_eq!(t.capped_fraction(), 0.0);
    }

    #[test]
    fn sampler_reads_instantaneous_state() {
        let t = sample_telemetry();
        let samples = t.sample(Seconds::new(1.0));
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].sm_util.value(), 50.0);
        assert_eq!(samples[2].power.watts(), 300.0);
        assert!(samples[2].capped);
        assert_eq!(samples[4].sm_util.value(), 0.0);
    }

    #[test]
    fn sampler_mean_approaches_exact_average() {
        let t = sample_telemetry();
        let samples = t.sample(Seconds::new(0.001));
        let mean_power: f64 =
            samples.iter().map(|s| s.power.watts()).sum::<f64>() / samples.len() as f64;
        assert!((mean_power - t.avg_power().watts()).abs() < 0.5);
    }
}
