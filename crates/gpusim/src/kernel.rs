//! Kernel launch configurations and kernel execution specifications.
//!
//! A [`KernelSpec`] describes one GPU kernel the way the scheduler's
//! profiling layer sees it: a launch configuration (which, combined with the
//! device limits, determines occupancy and how the kernel responds to SM
//! partitioning) plus resource-demand coefficients (SM throughput, memory
//! bandwidth, power) and a host-side gap that models the CPU work between
//! kernel launches.
//!
//! The demand coefficients are *solo* quantities — what the kernel consumes
//! running alone with a 100 % MPS partition at nominal clock. Everything
//! that happens under sharing (partition caps, contention, throttling) is
//! derived by the [`crate::contention`] solver.

use crate::device::DeviceSpec;
use crate::occupancy;
use mpshare_types::{Error, Fraction, Result, Seconds};
use serde::{Deserialize, Serialize};

/// CUDA-style kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block (≤ 1024 on real hardware; not enforced so tests
    /// can explore degenerate configurations).
    pub threads_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_mem_per_block: u64,
    /// Fraction of the issue slots of a fully-resident SM this kernel
    /// actually uses (models memory-latency and dependency stalls). This is
    /// the gap between theoretical and achieved occupancy that launch
    /// geometry alone cannot explain.
    pub issue_efficiency: Fraction,
}

impl LaunchConfig {
    /// A convenient dense launch: enough uniform blocks to fill the device,
    /// moderate register pressure, no shared memory.
    pub fn dense(grid_blocks: u32, threads_per_block: u32) -> Self {
        LaunchConfig {
            grid_blocks,
            threads_per_block,
            regs_per_thread: 32,
            shared_mem_per_block: 0,
            issue_efficiency: Fraction::ONE,
        }
    }

    pub fn with_issue_efficiency(mut self, eff: Fraction) -> Self {
        self.issue_efficiency = eff;
        self
    }

    pub fn with_regs(mut self, regs_per_thread: u32) -> Self {
        self.regs_per_thread = regs_per_thread;
        self
    }

    pub fn with_shared_mem(mut self, bytes: u64) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }
}

/// Full execution specification of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Launch geometry; drives occupancy and partition response.
    pub launch: LaunchConfig,
    /// Execution time when run alone with a 100 % partition at nominal
    /// clock. This is the unit in which remaining work is measured.
    pub solo_duration: Seconds,
    /// Fraction of device SM throughput consumed while running solo —
    /// what `nvidia-smi` reports as SM utilization during the kernel.
    pub sm_demand: Fraction,
    /// Fraction of peak device memory bandwidth consumed while running at
    /// full rate.
    pub bw_demand: Fraction,
    /// Sensitivity of this kernel to co-runner memory/cache pressure:
    /// rate is divided by `1 + cache_sensitivity × Σ other BW pressure`.
    pub cache_sensitivity: f64,
    /// Sensitivity to the *number* of co-resident MPS clients — the cost of
    /// sharing the launch path, scheduling hardware, and L2 with other
    /// processes. Kernels launched in rapid succession (small, frequent
    /// launches) suffer this far more than long-running streaming kernels.
    /// Rate is divided by `1 + client_sensitivity × min(n−1, 6)`.
    pub client_sensitivity: f64,
    /// Per-workload multiplier on dynamic power (captures clock residency
    /// and instruction mix differences the linear utilization model misses).
    pub power_scale: f64,
    /// SM count of the device the demand coefficients were calibrated
    /// against. `solo_duration` and `sm_demand` are relative to this
    /// device; when the kernel executes on a different device (e.g. a MIG
    /// slice), the contention solver rescales. Zero means "the executing
    /// device" (uncalibrated test kernels).
    pub reference_sms: u32,
    /// Peak memory bandwidth (bytes/s) of the calibration device; zero
    /// means "the executing device".
    pub reference_bandwidth: f64,
    /// Host-side (CPU) time after this kernel before the next one launches.
    /// The GPU is idle for this client during the gap.
    pub host_gap: Seconds,
}

impl KernelSpec {
    /// Builds a kernel spec, deriving `sm_demand` from the launch geometry:
    /// the fraction of device warp slots the kernel keeps busy, scaled by
    /// its issue efficiency.
    pub fn from_launch(device: &DeviceSpec, launch: LaunchConfig, solo_duration: Seconds) -> Self {
        let rep = occupancy::report(device, &launch);
        let sm_demand = Fraction::clamped(rep.achieved.value() / 100.0);
        KernelSpec {
            launch,
            solo_duration,
            sm_demand,
            bw_demand: Fraction::ZERO,
            cache_sensitivity: 0.0,
            client_sensitivity: 0.0,
            power_scale: 1.0,
            reference_sms: device.num_sms,
            reference_bandwidth: device.memory_bandwidth_bytes_per_sec,
            host_gap: Seconds::ZERO,
        }
    }

    pub fn with_bw_demand(mut self, bw: Fraction) -> Self {
        self.bw_demand = bw;
        self
    }

    pub fn with_sm_demand(mut self, sm: Fraction) -> Self {
        self.sm_demand = sm;
        self
    }

    pub fn with_cache_sensitivity(mut self, s: f64) -> Self {
        self.cache_sensitivity = s;
        self
    }

    pub fn with_client_sensitivity(mut self, s: f64) -> Self {
        self.client_sensitivity = s;
        self
    }

    pub fn with_power_scale(mut self, s: f64) -> Self {
        self.power_scale = s;
        self
    }

    pub fn with_host_gap(mut self, gap: Seconds) -> Self {
        self.host_gap = gap;
        self
    }

    /// Checks that the kernel can execute on `device` at all (at least one
    /// block must fit on an SM) and that its coefficients are sane.
    pub fn validate(&self, device: &DeviceSpec) -> Result<()> {
        if self.launch.grid_blocks == 0 {
            return Err(Error::InvalidConfig("kernel grid must be non-empty".into()));
        }
        if self.launch.threads_per_block == 0 {
            return Err(Error::InvalidConfig(
                "threads per block must be positive".into(),
            ));
        }
        let lims = occupancy::limits(device, &self.launch);
        if lims.blocks_per_sm() == 0 {
            return Err(Error::InvalidConfig(format!(
                "kernel block cannot fit on an SM of {} (limits {lims:?})",
                device.name
            )));
        }
        if !(self.solo_duration.value() > 0.0 && self.solo_duration.is_finite()) {
            return Err(Error::InvalidConfig(
                "kernel solo duration must be positive and finite".into(),
            ));
        }
        if self.cache_sensitivity < 0.0 || !self.cache_sensitivity.is_finite() {
            return Err(Error::InvalidConfig(
                "cache sensitivity must be non-negative and finite".into(),
            ));
        }
        if self.client_sensitivity < 0.0 || !self.client_sensitivity.is_finite() {
            return Err(Error::InvalidConfig(
                "client sensitivity must be non-negative and finite".into(),
            ));
        }
        if self.power_scale < 0.0 || !self.power_scale.is_finite() {
            return Err(Error::InvalidConfig(
                "power scale must be non-negative and finite".into(),
            ));
        }
        Ok(())
    }

    /// Number of SMs the kernel can run on under an SM partition `p`
    /// (fraction of the device's SMs). MPS active-thread-percentage
    /// provisioning rounds to whole SMs; a non-zero partition always yields
    /// at least one SM.
    pub fn sms_under_partition(device: &DeviceSpec, partition: Fraction) -> u32 {
        if partition.is_zero() {
            0
        } else {
            (((partition.value() * device.num_sms as f64).floor() as u32).max(1))
                .min(device.num_sms)
        }
    }

    /// Relative execution speed (vs. solo at 100 % partition) when limited
    /// to `sms` SMs.
    ///
    /// Work-conserving block scheduling: SMs pick up new blocks as they
    /// retire old ones, so a grid of `B` blocks at `bps` resident blocks
    /// per SM takes `max(1, B / (bps·sms))` rounds of the per-wave time.
    /// The resulting speed is
    /// `min(1, bps·sms / min(B, bps·S))`:
    ///
    /// * a grid smaller than one full-device wave (`B < bps·S`) saturates
    ///   once `sms ≥ B / bps` — extra partition is wasted (the red/green
    ///   circles of the paper's Figure 1);
    /// * a multi-wave grid scales linearly in the SM count — larger
    ///   problem sizes respond more linearly, as Figure 1c observes.
    pub fn speed_at_sms(&self, device: &DeviceSpec, sms: u32) -> f64 {
        if sms == 0 {
            return 0.0;
        }
        let bps = occupancy::limits(device, &self.launch).blocks_per_sm() as u64;
        if bps == 0 {
            return 0.0;
        }
        let grid = self.launch.grid_blocks as u64;
        // Speeds are relative to solo execution on the *reference* device
        // (the one the kernel's solo_duration was calibrated on), so a
        // smaller MIG slice runs calibrated kernels proportionally slower.
        let reference_sms = if self.reference_sms > 0 {
            self.reference_sms
        } else {
            device.num_sms
        };
        let full_supply = bps * reference_sms as u64;
        let supply = bps * sms as u64;
        (supply as f64 / grid.min(full_supply) as f64).min(1.0)
    }

    /// Relative execution speed under an SM partition fraction.
    ///
    /// ```
    /// use mpshare_gpusim::{DeviceSpec, KernelSpec, LaunchConfig};
    /// use mpshare_types::{Fraction, Seconds};
    ///
    /// let device = DeviceSpec::a100x();
    /// // 54 blocks at 2 blocks/SM need only 27 of the 108 SMs...
    /// let k = KernelSpec::from_launch(&device, LaunchConfig::dense(54, 1024), Seconds::new(1.0));
    /// // ...so a 25% partition (27 SMs) already runs at full speed,
    /// assert_eq!(k.speed_at_partition(&device, Fraction::new(0.25)), 1.0);
    /// // while a 10% partition starves it.
    /// assert!(k.speed_at_partition(&device, Fraction::new(0.10)) < 0.5);
    /// ```
    pub fn speed_at_partition(&self, device: &DeviceSpec, partition: Fraction) -> f64 {
        self.speed_at_sms(device, Self::sms_under_partition(device, partition))
    }

    /// SM-throughput demand expressed as a fraction of *this* device (the
    /// calibrated demand rescaled from the reference device), capped at 1.
    pub fn sm_demand_on(&self, device: &DeviceSpec) -> f64 {
        let scale = if self.reference_sms > 0 {
            self.reference_sms as f64 / device.num_sms as f64
        } else {
            1.0
        };
        (self.sm_demand.value() * scale).min(1.0)
    }

    /// Bandwidth demand as a fraction of this device's peak, capped at 1.
    pub fn bw_demand_on(&self, device: &DeviceSpec) -> f64 {
        let scale = if self.reference_bandwidth > 0.0 {
            self.reference_bandwidth / device.memory_bandwidth_bytes_per_sec
        } else {
            1.0
        };
        (self.bw_demand.value() * scale).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn kernel(grid: u32) -> KernelSpec {
        KernelSpec::from_launch(&dev(), LaunchConfig::dense(grid, 1024), Seconds::new(1.0))
    }

    #[test]
    fn from_launch_derives_sm_demand_from_achieved_occupancy() {
        // 216 blocks of 1024 threads exactly fill the A100X (2 blocks/SM).
        let k = kernel(216);
        assert!((k.sm_demand.value() - 1.0).abs() < 1e-12);
        // 108 blocks fill half the resident capacity.
        let k = kernel(108);
        assert!((k.sm_demand.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_reasonable_kernels() {
        kernel(216).validate(&dev()).unwrap();
    }

    #[test]
    fn validate_rejects_empty_grid_and_oversized_blocks() {
        let mut k = kernel(216);
        k.launch.grid_blocks = 0;
        assert!(k.validate(&dev()).is_err());

        let mut k = kernel(216);
        k.launch.shared_mem_per_block = 10 << 20;
        assert!(k.validate(&dev()).is_err());

        let mut k = kernel(216);
        k.solo_duration = Seconds::ZERO;
        assert!(k.validate(&dev()).is_err());
    }

    #[test]
    fn sms_under_partition_rounds_down_but_grants_at_least_one() {
        let d = dev();
        assert_eq!(KernelSpec::sms_under_partition(&d, Fraction::new(1.0)), 108);
        assert_eq!(KernelSpec::sms_under_partition(&d, Fraction::new(0.5)), 54);
        assert_eq!(KernelSpec::sms_under_partition(&d, Fraction::new(0.10)), 10);
        assert_eq!(KernelSpec::sms_under_partition(&d, Fraction::new(0.001)), 1);
        assert_eq!(KernelSpec::sms_under_partition(&d, Fraction::ZERO), 0);
    }

    #[test]
    fn small_grid_speed_saturates_early() {
        // 54 blocks, 2 blocks/SM -> needs 27 SMs; one wave down to 27 SMs.
        let d = dev();
        let k = kernel(54);
        assert_eq!(k.speed_at_sms(&d, 108), 1.0);
        assert_eq!(k.speed_at_sms(&d, 27), 1.0);
        // Below 27 SMs it needs more waves and slows down.
        assert!(k.speed_at_sms(&d, 14) < 1.0);
        assert!(k.speed_at_sms(&d, 7) < k.speed_at_sms(&d, 14));
    }

    #[test]
    fn large_grid_speed_is_nearly_linear() {
        let d = dev();
        let k = kernel(216 * 50); // 50 full waves
        let half = k.speed_at_sms(&d, 54);
        assert!((half - 0.5).abs() < 0.02, "speed at half SMs was {half}");
        let tenth = k.speed_at_sms(&d, 11);
        assert!((tenth - 0.1).abs() < 0.02, "speed at ~10% SMs was {tenth}");
    }

    #[test]
    fn speed_is_monotone_in_sms() {
        let d = dev();
        for grid in [5u32, 54, 216, 1000, 10_000] {
            let k = kernel(grid);
            let mut prev = 0.0;
            for sms in 1..=108 {
                let s = k.speed_at_sms(&d, sms);
                assert!(
                    s >= prev - 1e-12,
                    "speed not monotone for grid {grid} at {sms} SMs"
                );
                assert!(s <= 1.0 + 1e-12);
                prev = s;
            }
            assert!((prev - 1.0).abs() < 1e-12, "full-device speed must be 1");
        }
    }

    #[test]
    fn zero_partition_means_zero_speed() {
        let d = dev();
        let k = kernel(216);
        assert_eq!(k.speed_at_partition(&d, Fraction::ZERO), 0.0);
    }

    #[test]
    fn builder_methods_set_fields() {
        let k = kernel(216)
            .with_bw_demand(Fraction::new(0.4))
            .with_cache_sensitivity(0.1)
            .with_power_scale(1.2)
            .with_host_gap(Seconds::new(0.5));
        assert_eq!(k.bw_demand.value(), 0.4);
        assert_eq!(k.cache_sensitivity, 0.1);
        assert_eq!(k.power_scale, 1.2);
        assert_eq!(k.host_gap.value(), 0.5);
    }
}
