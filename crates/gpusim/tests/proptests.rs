//! Property-based tests of the simulator's core math: the occupancy
//! calculator, the contention solver, max-min fairness, and the power
//! model.

use mpshare_gpusim::contention::{max_min_share, Contender};
use mpshare_gpusim::{
    occupancy, ContentionSolver, DeviceSpec, KernelSpec, LaunchConfig, PowerModel,
};
use mpshare_types::{Fraction, Seconds};
use proptest::prelude::*;

fn device() -> DeviceSpec {
    DeviceSpec::a100x()
}

/// Arbitrary (possibly degenerate) launch configurations.
fn launch_strategy() -> impl Strategy<Value = LaunchConfig> {
    (
        1u32..=50_000,  // grid blocks
        1u32..=1024,    // threads per block
        0u32..=255,     // registers per thread
        0u64..=200_000, // shared memory per block
        0.05f64..=1.0,  // issue efficiency
    )
        .prop_map(|(grid, tpb, regs, smem, eff)| LaunchConfig {
            grid_blocks: grid,
            threads_per_block: tpb,
            regs_per_thread: regs,
            shared_mem_per_block: smem,
            issue_efficiency: Fraction::new(eff),
        })
}

fn kernel_strategy() -> impl Strategy<Value = KernelSpec> {
    (
        0.01f64..=1.0, // sm demand
        0.0f64..=1.0,  // bw demand
        0.0f64..=2.0,  // cache sensitivity
        0.0f64..=0.3,  // client sensitivity
        0.1f64..=3.0,  // power scale
    )
        .prop_map(|(sm, bw, cache, client, power)| {
            KernelSpec::from_launch(
                &device(),
                LaunchConfig::dense(10_000, 256),
                Seconds::new(1.0),
            )
            .with_sm_demand(Fraction::new(sm))
            .with_bw_demand(Fraction::new(bw))
            .with_cache_sensitivity(cache)
            .with_client_sensitivity(client)
            .with_power_scale(power)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Occupancy outputs are always within physical bounds, and achieved
    /// never exceeds theoretical.
    #[test]
    fn occupancy_bounds(launch in launch_strategy()) {
        let rep = occupancy::report(&device(), &launch);
        prop_assert!(rep.theoretical.value() >= 0.0 && rep.theoretical.value() <= 100.0);
        prop_assert!(rep.achieved.value() <= rep.theoretical.value() + 1e-9);
        prop_assert!(rep.waves >= 1);
        // Resident warps never exceed the SM's warp capacity.
        let resident = rep.blocks_per_sm as u64 * rep.warps_per_block as u64;
        if rep.blocks_per_sm > 0 {
            prop_assert!(
                rep.theoretical.value()
                    <= 100.0 * resident as f64 / device().max_warps_per_sm as f64 + 1e-9
            );
        } else {
            prop_assert_eq!(rep.theoretical.value(), 0.0);
        }
    }

    /// More resident resources never decrease occupancy: shrinking
    /// register pressure can only keep or raise the theoretical bound.
    #[test]
    fn occupancy_monotone_in_registers(launch in launch_strategy()) {
        let d = device();
        let base = occupancy::report(&d, &launch);
        let mut lighter = launch;
        lighter.regs_per_thread = launch.regs_per_thread / 2;
        let better = occupancy::report(&d, &lighter);
        prop_assert!(better.theoretical.value() >= base.theoretical.value() - 1e-9);
    }

    /// Solver outputs are bounded and conserve device capacity.
    #[test]
    fn solver_respects_capacity(
        kernels in prop::collection::vec(kernel_strategy(), 1..16),
        partitions in prop::collection::vec(0.05f64..=1.0, 16),
    ) {
        let solver = ContentionSolver::new(device(), 0.01);
        let contenders: Vec<Contender<'_>> = kernels
            .iter()
            .zip(&partitions)
            .map(|(kernel, p)| Contender {
                kernel,
                partition: Fraction::new(*p),
            })
            .collect();
        let allocations = solver.solve(&contenders);
        prop_assert_eq!(allocations.len(), kernels.len());
        let mut sm_total = 0.0;
        let mut bw_total = 0.0;
        for a in &allocations {
            prop_assert!(a.rate >= 0.0 && a.rate <= 1.0 + 1e-9, "rate {}", a.rate);
            prop_assert!(a.sm_share >= 0.0 && a.bw_share >= 0.0);
            prop_assert!(a.dyn_power_watts >= 0.0 && a.dyn_power_watts.is_finite());
            sm_total += a.sm_share;
            bw_total += a.bw_share;
        }
        prop_assert!(sm_total <= 1.0 + 1e-6, "sm {sm_total}");
        prop_assert!(bw_total <= 1.0 + 1e-6, "bw {bw_total}");
    }

    /// Adding a co-runner never speeds anyone up.
    #[test]
    fn corunners_never_help(
        kernels in prop::collection::vec(kernel_strategy(), 2..8),
    ) {
        let solver = ContentionSolver::new(device(), 0.0);
        let solo = {
            let contenders = [Contender {
                kernel: &kernels[0],
                partition: Fraction::ONE,
            }];
            solver.solve(&contenders)[0].rate
        };
        let shared = {
            let contenders: Vec<Contender<'_>> = kernels
                .iter()
                .map(|kernel| Contender {
                    kernel,
                    partition: Fraction::ONE,
                })
                .collect();
            solver.solve(&contenders)[0].rate
        };
        prop_assert!(shared <= solo + 1e-9, "shared {shared} > solo {solo}");
    }

    /// Max-min fairness: never exceeds demand, exhausts capacity when
    /// oversubscribed, and dominates any uniform split for the smallest
    /// demand.
    #[test]
    fn max_min_properties(
        wanted in prop::collection::vec(0.0f64..=1.0, 1..12),
        capacity in 0.1f64..=1.0,
    ) {
        let granted = max_min_share(&wanted, capacity);
        let total_wanted: f64 = wanted.iter().sum();
        let total_granted: f64 = granted.iter().sum();
        for (g, w) in granted.iter().zip(&wanted) {
            prop_assert!(*g >= -1e-12 && *g <= w + 1e-12);
        }
        if total_wanted <= capacity {
            prop_assert!((total_granted - total_wanted).abs() < 1e-9);
        } else {
            prop_assert!((total_granted - capacity).abs() < 1e-9);
            // Max-min dominance: everyone gets at least
            // min(want, capacity/n).
            let fair = capacity / wanted.len() as f64;
            for (g, w) in granted.iter().zip(&wanted) {
                prop_assert!(*g >= w.min(fair) - 1e-9);
            }
        }
    }

    /// The power model never reports above the cap, never yields a
    /// non-positive clock, and is monotone in dynamic draw.
    #[test]
    fn power_model_bounds(
        dyn_a in 0.0f64..=2000.0,
        dyn_b in 0.0f64..=2000.0,
        clients in 0usize..=48,
    ) {
        let model = PowerModel::new(&device());
        let a = model.resolve(dyn_a, clients);
        let b = model.resolve(dyn_b, clients);
        for s in [&a, &b] {
            prop_assert!(s.power.watts() <= 300.0 + 1e-9);
            prop_assert!(s.clock_factor > 0.0 || s.power.watts() <= 75.0 + 1e-9);
            prop_assert!(s.clock_factor <= 1.0);
        }
        // Reported power is monotone (weakly) in dynamic draw.
        if dyn_a <= dyn_b {
            prop_assert!(a.power.watts() <= b.power.watts() + 1e-9);
        }
    }
}
