//! Dependency-free parallel fan-out for deterministic simulation sweeps.
//!
//! The engine (`mpshare-gpusim`) is deterministic, so parallelism lives only
//! at the fan-out level: independent simulations (planner candidates,
//! experiment sweep points, sequential/shared executor legs) run on worker
//! threads via [`std::thread::scope`], and results are written back by index.
//! Output is therefore **bit-identical** to the serial path regardless of
//! worker count or scheduling order.
//!
//! The build environment is offline, so this crate intentionally replaces
//! `rayon` with `std`-only primitives. Keep it free of external dependencies.
//!
//! # Serial escape hatch
//!
//! Set the env var `MPSHARE_SERIAL=1`, pass `--serial` to the harness
//! binaries (they call [`set_serial`]), or call [`set_serial(true)`] in tests
//! to force every `par_*` helper onto the calling thread. [`is_serial`]
//! reports the effective mode.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);
static ENV_SERIAL: OnceLock<bool> = OnceLock::new();

/// Force (or undo forcing) serial execution process-wide.
pub fn set_serial(serial: bool) {
    FORCE_SERIAL.store(serial, Ordering::SeqCst);
}

/// True when fan-out is disabled — either programmatically ([`set_serial`],
/// the harness `--serial` flag) or via the `MPSHARE_SERIAL` env var.
pub fn is_serial() -> bool {
    FORCE_SERIAL.load(Ordering::SeqCst)
        || *ENV_SERIAL.get_or_init(|| {
            std::env::var("MPSHARE_SERIAL")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false)
        })
}

/// Number of worker threads a fan-out uses: the machine's available
/// parallelism, capped by the job count.
pub fn worker_count(jobs: usize) -> usize {
    if is_serial() || jobs <= 1 {
        return 1;
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
}

/// Map `f` over `items` in parallel, preserving input order in the output.
///
/// Results are written back by index, so the output is identical to
/// `items.iter().map(f).collect()` for any worker count. A panic in `f` is
/// re-raised on the calling thread after all workers stop.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], but `f` also receives the item's index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let cursor = AtomicUsize::new(0);
    let slots_ptr = SlotWriter::new(&mut slots);

    let panic_payload = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            let slots_ptr = &slots_ptr;
            handles.push(scope.spawn(move || {
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        return Ok(());
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(value) => {
                            // SAFETY: each index is claimed exactly once via
                            // the atomic cursor, so no two threads write the
                            // same slot.
                            unsafe { slots_ptr.write(i, value) };
                        }
                        Err(payload) => return Err(payload),
                    }
                }
            }));
        }
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join().expect("mpshare-par worker thread died") {
                first_panic.get_or_insert(payload);
            }
        }
        first_panic
    });

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("mpshare-par: missing result slot"))
        .collect()
}

/// Fallible parallel map preserving input order; the error from the
/// lowest-indexed failing item is returned, matching the serial
/// `iter().map(f).collect::<Result<_, _>>()` short-circuit semantics except
/// that later items may still have been evaluated.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let results = par_map(items, f);
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out)
}

/// Run two independent closures, potentially in parallel, returning both
/// results. Used for e.g. an executor's sequential and shared legs. Runs
/// inline when serial mode is forced or the machine has a single core
/// (spawning would only add overhead).
pub fn join<RA, RB, FA, FB>(a: FA, b: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if worker_count(2) <= 1 {
        return (a(), b());
    }
    thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = handle
            .join()
            .unwrap_or_else(|payload| resume_unwind(payload));
        (ra, rb)
    })
}

/// Covariant-free cell letting scoped worker threads write disjoint slots of
/// a result vector without locking.
struct SlotWriter<R> {
    ptr: *mut Option<R>,
}

impl<R> SlotWriter<R> {
    fn new(slots: &mut [Option<R>]) -> Self {
        SlotWriter {
            ptr: slots.as_mut_ptr(),
        }
    }

    /// SAFETY: callers must ensure `i` is in bounds and written at most once
    /// while no other reference to slot `i` exists.
    unsafe fn write(&self, i: usize, value: R) {
        unsafe { self.ptr.add(i).write(Some(value)) };
    }
}

// SAFETY: SlotWriter is only shared between scoped threads that write
// disjoint indices; R: Send is required to move results across threads.
unsafe impl<R: Send> Sync for SlotWriter<R> {}
unsafe impl<R: Send> Send for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = par_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_serial_exactly() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |&x: &f64| (x.sin() * 1e9).to_bits();
        let parallel = par_map(&items, f);
        set_serial(true);
        let serial = par_map(&items, f);
        set_serial(false);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn try_par_map_reports_lowest_index_error() {
        let items: Vec<u32> = (0..64).collect();
        let result: Result<Vec<u32>, u32> =
            try_par_map(&items, |&x| if x % 10 == 7 { Err(x) } else { Ok(x) });
        assert_eq!(result.unwrap_err(), 7);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[42u8], |&x| x + 1), vec![43]);
    }
}
