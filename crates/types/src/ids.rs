//! Typed identifiers for simulator entities.
//!
//! Each id is a thin `u32`/`u64` wrapper; the macro keeps the definitions in
//! one place and guarantees all ids get the same trait surface.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// A physical GPU in the simulated node.
    GpuId,
    "gpu"
);
define_id!(
    /// An MPS client (one per concurrently scheduled process).
    ClientId,
    "client"
);
define_id!(
    /// A workflow: an ordered sequence of tasks with data dependencies.
    WorkflowId,
    "wf"
);
define_id!(
    /// A workflow task: one benchmark run (many kernels).
    TaskId,
    "task"
);
define_id!(
    /// A single kernel launch within a task.
    KernelId,
    "kernel"
);

/// Monotonic id allocator used by builders that need fresh ids.
#[derive(Debug, Default, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out the next raw id, starting from zero.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    pub fn next_task(&mut self) -> TaskId {
        TaskId::new(self.next_raw())
    }

    pub fn next_workflow(&mut self) -> WorkflowId {
        WorkflowId::new(self.next_raw())
    }

    pub fn next_client(&mut self) -> ClientId {
        ClientId::new(self.next_raw())
    }

    pub fn next_kernel(&mut self) -> KernelId {
        KernelId::new(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(GpuId::new(3).to_string(), "gpu3");
        assert_eq!(ClientId::new(0).to_string(), "client0");
        assert_eq!(WorkflowId::new(7).to_string(), "wf7");
        assert_eq!(TaskId::new(12).to_string(), "task12");
        assert_eq!(KernelId::new(9).to_string(), "kernel9");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TaskId::new(1));
        set.insert(TaskId::new(1));
        set.insert(TaskId::new(2));
        assert_eq!(set.len(), 2);
        assert!(TaskId::new(1) < TaskId::new(2));
    }

    #[test]
    fn allocator_hands_out_unique_ids() {
        let mut alloc = IdAllocator::new();
        let a = alloc.next_task();
        let b = alloc.next_task();
        let c = alloc.next_workflow();
        assert_ne!(a, b);
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(c.raw(), 2);
    }

    #[test]
    fn ids_serde_round_trip() {
        let id = TaskId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "42");
        let back: TaskId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
