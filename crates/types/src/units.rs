//! Physical-unit newtypes used across the simulator and scheduler.
//!
//! The arithmetic provided on each type is deliberately restricted to the
//! operations that make dimensional sense: `Power × Seconds = Energy`,
//! `Energy / Seconds = Power`, and so on. Anything else requires an explicit
//! `.value()` escape hatch, which keeps unit errors visible in review.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Simulated wall-clock time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Seconds(f64);

impl Seconds {
    pub const ZERO: Seconds = Seconds(0.0);

    /// A time far in the future, used as the "no next event" sentinel.
    pub const INFINITY: Seconds = Seconds(f64::INFINITY);

    /// Creates a time value. Panics on negative or NaN input: simulated time
    /// never runs backwards and a NaN timestamp would poison every
    /// comparison in the event loop.
    #[track_caller]
    pub fn new(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && !secs.is_nan(),
            "Seconds must be non-negative and not NaN, got {secs}"
        );
        Seconds(secs)
    }

    /// Creates a time value from milliseconds.
    #[track_caller]
    pub fn from_millis(ms: f64) -> Self {
        Seconds::new(ms / 1e3)
    }

    pub fn value(self) -> f64 {
        self.0
    }

    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: the result is clamped at zero rather than
    /// panicking, for use in "remaining time" computations where floating
    /// point drift can produce tiny negatives.
    pub fn saturating_sub(self, other: Seconds) -> Seconds {
        Seconds((self.0 - other.0).max(0.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[track_caller]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        // `+ 0.0` normalizes the empty sum, which is -0.0 in IEEE fadd.
        Seconds(iter.map(|s| s.0).sum::<f64>() + 0.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// Instantaneous electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Power(f64);

impl Power {
    pub const ZERO: Power = Power(0.0);

    #[track_caller]
    pub fn from_watts(watts: f64) -> Self {
        assert!(
            watts >= 0.0 && watts.is_finite(),
            "Power must be finite and non-negative, got {watts}"
        );
        Power(watts)
    }

    pub fn watts(self) -> f64 {
        self.0
    }

    pub fn min(self, other: Power) -> Power {
        Power(self.0.min(other.0))
    }

    pub fn max(self, other: Power) -> Power {
        Power(self.0.max(other.0))
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    #[track_caller]
    fn sub(self, rhs: Power) -> Power {
        Power::from_watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Mul<Seconds> for Power {
    type Output = Energy;
    fn mul(self, rhs: Seconds) -> Energy {
        Energy(self.0 * rhs.value())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum::<f64>() + 0.0)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0)
    }
}

/// Accumulated energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Energy(f64);

impl Energy {
    pub const ZERO: Energy = Energy(0.0);

    #[track_caller]
    pub fn from_joules(joules: f64) -> Self {
        assert!(
            joules >= 0.0 && joules.is_finite(),
            "Energy must be finite and non-negative, got {joules}"
        );
        Energy(joules)
    }

    pub fn joules(self) -> f64 {
        self.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[track_caller]
    fn sub(self, rhs: Energy) -> Energy {
        Energy::from_joules(self.0 - rhs.0)
    }
}

impl Div<Seconds> for Energy {
    type Output = Power;
    fn div(self, rhs: Seconds) -> Power {
        Power(self.0 / rhs.value())
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum::<f64>() + 0.0)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J", self.0)
    }
}

/// GPU memory sizes, stored in bytes. Constructors accept MiB/GiB because
/// that is how the paper (and `nvidia-smi`) report them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct MemBytes(u64);

impl MemBytes {
    pub const ZERO: MemBytes = MemBytes(0);

    pub fn from_bytes(bytes: u64) -> Self {
        MemBytes(bytes)
    }

    pub fn from_mib(mib: u64) -> Self {
        MemBytes(mib * 1024 * 1024)
    }

    pub fn from_gib(gib: u64) -> Self {
        MemBytes(gib * 1024 * 1024 * 1024)
    }

    pub fn bytes(self) -> u64 {
        self.0
    }

    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    pub fn gib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    pub fn saturating_sub(self, other: MemBytes) -> MemBytes {
        MemBytes(self.0.saturating_sub(other.0))
    }

    /// Scales a footprint by a (non-negative) factor, rounding to bytes.
    #[track_caller]
    pub fn scale(self, factor: f64) -> MemBytes {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be finite and non-negative, got {factor}"
        );
        MemBytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for MemBytes {
    type Output = MemBytes;
    fn add(self, rhs: MemBytes) -> MemBytes {
        MemBytes(self.0 + rhs.0)
    }
}

impl AddAssign for MemBytes {
    fn add_assign(&mut self, rhs: MemBytes) {
        self.0 += rhs.0;
    }
}

impl SubAssign for MemBytes {
    #[track_caller]
    fn sub_assign(&mut self, rhs: MemBytes) {
        assert!(self.0 >= rhs.0, "MemBytes subtraction would underflow");
        self.0 -= rhs.0;
    }
}

impl Sum for MemBytes {
    fn sum<I: Iterator<Item = MemBytes>>(iter: I) -> MemBytes {
        MemBytes(iter.map(|m| m.0).sum())
    }
}

impl fmt::Display for MemBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}MiB", self.mib())
    }
}

/// A utilization percentage in `[0, 100]`.
///
/// Used for SM utilization, memory-bandwidth utilization, and occupancy.
/// Sums of percentages (e.g. combined SM demand of co-scheduled workflows)
/// are represented as plain `f64` because they may legitimately exceed 100.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Percent(f64);

impl Percent {
    pub const ZERO: Percent = Percent(0.0);
    pub const HUNDRED: Percent = Percent(100.0);

    /// Compile-time constructor for literal percentages. No validation —
    /// use only with constants known to be in `[0, 100]`.
    pub const fn new_const(pct: f64) -> Self {
        Percent(pct)
    }

    /// Creates a percentage, panicking when outside `[0, 100]` or NaN.
    #[track_caller]
    pub fn new(pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&pct),
            "Percent must be within [0, 100], got {pct}"
        );
        Percent(pct)
    }

    /// Creates a percentage, clamping into `[0, 100]` (NaN becomes 0).
    pub fn clamped(pct: f64) -> Self {
        if pct.is_nan() {
            Percent(0.0)
        } else {
            Percent(pct.clamp(0.0, 100.0))
        }
    }

    /// Converts a `[0, 1]` fraction into a percentage (clamping).
    pub fn from_fraction(frac: f64) -> Self {
        Percent::clamped(frac * 100.0)
    }

    pub fn value(self) -> f64 {
        self.0
    }

    /// The `[0, 1]` fraction equivalent.
    pub fn fraction(self) -> Fraction {
        Fraction::clamped(self.0 / 100.0)
    }

    pub fn min(self, other: Percent) -> Percent {
        Percent(self.0.min(other.0))
    }

    pub fn max(self, other: Percent) -> Percent {
        Percent(self.0.max(other.0))
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}%", self.0)
    }
}

/// A ratio in `[0, 1]`, e.g. an SM allocation share or a clock factor.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Fraction(f64);

impl Fraction {
    pub const ZERO: Fraction = Fraction(0.0);
    pub const ONE: Fraction = Fraction(1.0);

    /// Creates a fraction, panicking when outside `[0, 1]` or NaN.
    #[track_caller]
    pub fn new(frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&frac),
            "Fraction must be within [0, 1], got {frac}"
        );
        Fraction(frac)
    }

    /// Creates a fraction, clamping into `[0, 1]` (NaN becomes 0).
    pub fn clamped(frac: f64) -> Self {
        if frac.is_nan() {
            Fraction(0.0)
        } else {
            Fraction(frac.clamp(0.0, 1.0))
        }
    }

    pub fn value(self) -> f64 {
        self.0
    }

    pub fn percent(self) -> Percent {
        Percent::clamped(self.0 * 100.0)
    }

    pub fn min(self, other: Fraction) -> Fraction {
        Fraction(self.0.min(other.0))
    }

    pub fn max(self, other: Fraction) -> Fraction {
        Fraction(self.0.max(other.0))
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Default for Fraction {
    fn default() -> Self {
        Fraction::ZERO
    }
}

impl Mul for Fraction {
    type Output = Fraction;
    fn mul(self, rhs: Fraction) -> Fraction {
        Fraction(self.0 * rhs.0)
    }
}

impl Mul<f64> for Fraction {
    type Output = f64;
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Neg for Fraction {
    type Output = f64;
    fn neg(self) -> f64 {
        -self.0
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_arithmetic_and_ordering() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn seconds_rejects_negative() {
        let _ = Seconds::new(-0.1);
    }

    #[test]
    fn seconds_saturating_sub_clamps_at_zero() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.saturating_sub(b), Seconds::ZERO);
        assert_eq!(b.saturating_sub(a).value(), 1.0);
    }

    #[test]
    fn seconds_sum() {
        let total: Seconds = [1.0, 2.0, 3.0].into_iter().map(Seconds::new).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn empty_sums_are_positive_zero() {
        // IEEE fadd's identity is -0.0; the unit types must normalize it
        // so downstream ratios and formatting never see a negative zero.
        let t: Seconds = std::iter::empty().sum();
        assert!(!t.value().is_sign_negative());
        let p: Power = std::iter::empty().sum();
        assert!(!p.watts().is_sign_negative());
        let e: Energy = std::iter::empty().sum();
        assert!(!e.joules().is_sign_negative());
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(100.0) * Seconds::new(3.0);
        assert_eq!(e.joules(), 300.0);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_joules(300.0) / Seconds::new(3.0);
        assert_eq!(p.watts(), 100.0);
    }

    #[test]
    fn energy_ratio_is_dimensionless() {
        let ratio = Energy::from_joules(200.0) / Energy::from_joules(100.0);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn power_rejects_nan() {
        let _ = Power::from_watts(f64::NAN);
    }

    #[test]
    fn membytes_conversions_round_trip() {
        let m = MemBytes::from_mib(2048);
        assert_eq!(m.mib(), 2048.0);
        assert_eq!(m.gib(), 2.0);
        assert_eq!(MemBytes::from_gib(2), m);
    }

    #[test]
    fn membytes_scale_rounds() {
        let m = MemBytes::from_bytes(10);
        assert_eq!(m.scale(1.26).bytes(), 13);
        assert_eq!(m.scale(0.0), MemBytes::ZERO);
    }

    #[test]
    fn percent_clamping_behaviour() {
        assert_eq!(Percent::clamped(150.0), Percent::HUNDRED);
        assert_eq!(Percent::clamped(-3.0), Percent::ZERO);
        assert_eq!(Percent::clamped(f64::NAN), Percent::ZERO);
        assert_eq!(Percent::from_fraction(0.5).value(), 50.0);
    }

    #[test]
    fn percent_fraction_round_trip() {
        let p = Percent::new(37.5);
        assert!((p.fraction().value() - 0.375).abs() < 1e-12);
        assert_eq!(p.fraction().percent(), p);
    }

    #[test]
    #[should_panic(expected = "within [0, 100]")]
    fn percent_new_rejects_out_of_range() {
        let _ = Percent::new(100.1);
    }

    #[test]
    fn fraction_algebra() {
        let half = Fraction::new(0.5);
        let quarter = half * half;
        assert_eq!(quarter.value(), 0.25);
        assert_eq!(half * 8.0, 4.0);
        assert_eq!(half.percent().value(), 50.0);
    }

    #[test]
    fn serde_round_trips_are_transparent() {
        let s = Seconds::new(1.25);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "1.25");
        let back: Seconds = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);

        let m = MemBytes::from_mib(3);
        let json = serde_json::to_string(&m).unwrap();
        let back: MemBytes = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
