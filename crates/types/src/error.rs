//! Workspace-wide error type.
//!
//! Hand-rolled rather than derived so the workspace stays within its
//! declared dependency budget. The variants mirror the failure modes of the
//! real stack: MPS admission failures, device-memory exhaustion, invalid
//! configuration, and scheduler constraint violations.

use crate::ids::{ClientId, GpuId, TaskId, WorkflowId};
use crate::units::MemBytes;
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Unified error type for the simulator, MPS model, and scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An MPS server refused a new client connection (48-client limit).
    ClientLimitExceeded { gpu: GpuId, limit: usize },
    /// A client requested more device memory than is currently free.
    OutOfMemory {
        gpu: GpuId,
        requested: MemBytes,
        available: MemBytes,
    },
    /// A configuration value was outside its legal range.
    InvalidConfig(String),
    /// A sharing-mode operation was attempted in the wrong state
    /// (e.g. reconfiguring MIG while the GPU is busy).
    InvalidState(String),
    /// The scheduler produced or was asked to execute a plan that violates
    /// a hard constraint (memory capacity, client limit, dependency order).
    PlanViolation(String),
    /// A referenced entity does not exist.
    UnknownClient(ClientId),
    /// A referenced task does not exist in the queue/plan.
    UnknownTask(TaskId),
    /// A referenced workflow does not exist in the queue/plan.
    UnknownWorkflow(WorkflowId),
    /// The simulation failed to make progress (all runnable kernels have a
    /// zero rate) — indicates an engine bug or an impossible allocation.
    Stalled { at_seconds: f64, detail: String },
    /// Profile data required by the scheduler is missing for a task kind.
    MissingProfile(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ClientLimitExceeded { gpu, limit } => {
                write!(f, "{gpu}: MPS client limit of {limit} exceeded")
            }
            Error::OutOfMemory {
                gpu,
                requested,
                available,
            } => write!(
                f,
                "{gpu}: out of device memory (requested {requested}, available {available})"
            ),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::PlanViolation(msg) => write!(f, "schedule plan violates constraints: {msg}"),
            Error::UnknownClient(id) => write!(f, "unknown client {id}"),
            Error::UnknownTask(id) => write!(f, "unknown task {id}"),
            Error::UnknownWorkflow(id) => write!(f, "unknown workflow {id}"),
            Error::Stalled { at_seconds, detail } => {
                write!(f, "simulation stalled at t={at_seconds:.6}s: {detail}")
            }
            Error::MissingProfile(kind) => {
                write!(f, "no profile available for workload kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::OutOfMemory {
            gpu: GpuId::new(0),
            requested: MemBytes::from_mib(4096),
            available: MemBytes::from_mib(1024),
        };
        let msg = e.to_string();
        assert!(msg.contains("gpu0"));
        assert!(msg.contains("4096MiB"));
        assert!(msg.contains("1024MiB"));

        let e = Error::ClientLimitExceeded {
            gpu: GpuId::new(1),
            limit: 48,
        };
        assert!(e.to_string().contains("48"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: std::error::Error>(_e: &E) {}
        assert_error(&Error::InvalidConfig("x".into()));
    }

    #[test]
    fn errors_compare_equal_structurally() {
        assert_eq!(
            Error::UnknownClient(ClientId::new(2)),
            Error::UnknownClient(ClientId::new(2))
        );
        assert_ne!(
            Error::UnknownClient(ClientId::new(2)),
            Error::UnknownClient(ClientId::new(3))
        );
    }
}
