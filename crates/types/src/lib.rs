//! Shared units, identifiers, and error types for the `mpshare` workspace.
//!
//! Every crate in the workspace speaks in these newtypes so that seconds,
//! joules, watts, mebibytes, and utilization percentages can never be mixed
//! up silently. All quantities are `f64` internally (the simulator is a
//! piecewise-constant-rate model, not a cycle-accurate one), but the
//! constructors enforce the obvious domain invariants (non-negative time,
//! percentages clamped to `[0, 100]`, …).

pub mod error;
pub mod ids;
pub mod units;

pub use error::{Error, Result};
pub use ids::{ClientId, GpuId, IdAllocator, KernelId, TaskId, WorkflowId};
pub use units::{Energy, Fraction, MemBytes, Percent, Power, Seconds};
