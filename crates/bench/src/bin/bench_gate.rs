//! Bench regression gate: compares a fresh `MPSHARE_BENCH_JSON` summary
//! against the committed baseline (BENCH_engine.json) and fails when any
//! scenario present in *both* files regressed beyond the tolerance.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--max-regression 0.25]
//! ```
//!
//! Scenarios are matched by name on the median. Names present in only one
//! file are tolerated (renames, newly added benchmarks, retired ones) and
//! reported informationally — the gate guards *pre-existing* scenarios.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn load_medians(path: &str) -> Result<BTreeMap<String, u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let root: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e:?}"))?;
    let scenarios = root
        .get("scenarios")
        .and_then(|s| s.as_array())
        .ok_or_else(|| format!("{path}: missing \"scenarios\" array"))?;
    let mut out = BTreeMap::new();
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("{path}: scenario without a \"name\""))?;
        let median = s
            .get("median_ns")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("{path}: scenario {name:?} without \"median_ns\""))?;
        out.insert(name.to_string(), median);
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regression" {
            let v = it
                .next()
                .ok_or_else(|| "--max-regression needs a value".to_string())?;
            max_regression = v
                .parse()
                .map_err(|e| format!("--max-regression {v:?}: {e}"))?;
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err(
            "usage: bench_gate <baseline.json> <candidate.json> [--max-regression R]".to_string(),
        );
    };

    let baseline = load_medians(baseline_path)?;
    let candidate = load_medians(candidate_path)?;

    let mut failed = false;
    for (name, &base) in &baseline {
        let Some(&cand) = candidate.get(name) else {
            println!("SKIP  {name}: not in candidate (removed or renamed)");
            continue;
        };
        if base == 0 {
            println!("SKIP  {name}: zero baseline median");
            continue;
        }
        let ratio = cand as f64 / base as f64 - 1.0;
        let verdict = if ratio > max_regression {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:<5} {name}: baseline {base} ns -> candidate {cand} ns ({:+.1}%)",
            ratio * 100.0
        );
    }
    for name in candidate.keys() {
        if !baseline.contains_key(name) {
            println!("NEW   {name}: no baseline yet");
        }
    }
    if failed {
        println!(
            "bench gate: regression beyond {:.0}%",
            max_regression * 100.0
        );
    } else {
        println!(
            "bench gate: all shared scenarios within {:.0}%",
            max_regression * 100.0
        );
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
