//! Shared helpers for the criterion benchmark suite.
//!
//! Every paper table and figure has a bench target that regenerates it
//! (and measures how long the regeneration takes); `ablations` additionally
//! quantifies the design choices called out in DESIGN.md, and
//! `engine_performance` measures the raw simulator.

use criterion::Criterion;

/// Criterion configuration shared by experiment-regeneration benches:
/// these run whole simulations per iteration, so small sample counts keep
/// `cargo bench` turnaround sane.
pub fn experiment_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500))
}

#[cfg(test)]
mod tests {
    #[test]
    fn config_builds() {
        let _ = super::experiment_criterion();
    }
}
