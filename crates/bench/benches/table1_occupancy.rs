//! Regenerates the paper's Table I (warp occupancy per benchmark) and
//! measures the cost of the occupancy-profiling pass.

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::{occupancy, DeviceSpec};
use mpshare_harness::experiments::table1;
use mpshare_types::TaskId;
use mpshare_workloads::{all_benchmarks, build_task, ProblemSize};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();

    c.bench_function("table1/full_regeneration", |b| {
        b.iter(|| table1::rows(black_box(&device)).unwrap())
    });

    // The occupancy calculator itself (per kernel-launch analysis).
    let tasks: Vec<_> = all_benchmarks()
        .iter()
        .map(|m| build_task(&device, m, ProblemSize::X1, TaskId::new(0)).unwrap())
        .collect();
    c.bench_function("table1/occupancy_calculator", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for t in &tasks {
                for k in &t.kernels {
                    acc += occupancy::report(&device, &k.launch).achieved.value();
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
