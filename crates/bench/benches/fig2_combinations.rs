//! Regenerates the paper's Figure 2 / Table III combination runs.
//!
//! Benches the cheap combinations individually (1 and 9); `fig2/all_combos`
//! regenerates the entire figure and is the slowest target in the suite.

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::combos;
use mpshare_workloads::table3_combinations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let all = table3_combinations();

    for idx in [0usize, 8] {
        let combo = all[idx].clone();
        c.bench_function(&format!("fig2/combination_{}", combo.number), |b| {
            b.iter(|| combos::run_combination(black_box(&device), black_box(&combo)).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
