//! Regenerates the paper's Figure 1 (throughput vs. MPS partition).

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::{ClientProgram, DeviceSpec};
use mpshare_harness::experiments::fig1;
use mpshare_mps::{GpuRunner, GpuSharing};
use mpshare_types::{Fraction, TaskId};
use mpshare_workloads::{benchmark, build_task, BenchmarkKind, ProblemSize};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();

    c.bench_function("fig1/full_sweep", |b| {
        b.iter(|| fig1::points(black_box(&device)).unwrap())
    });

    // One series (Kripke 1x across ten partitions).
    let model = benchmark(BenchmarkKind::Kripke);
    let task = build_task(&device, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
    let runner = GpuRunner::new(device.clone());
    c.bench_function("fig1/kripke_1x_series", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for pct in (10..=100).step_by(10) {
                let mut p = ClientProgram::new("k");
                p.push_task(task.clone());
                let sharing = GpuSharing::Mps {
                    partitions: vec![Fraction::new(pct as f64 / 100.0)],
                };
                total += runner.run(&sharing, vec![p]).unwrap().makespan.value();
            }
            black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
