//! Raw simulator performance: contention-solver scaling with client count
//! and end-to-end engine event throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpshare_gpusim::contention::Contender;
use mpshare_gpusim::{
    ClientProgram, ContentionSolver, DeviceSpec, Engine, EngineConfig, KernelSpec, LaunchConfig,
    SharingMode, TaskProgram,
};
use mpshare_types::{Fraction, MemBytes, Seconds, TaskId};
use std::hint::black_box;

fn kernel(device: &DeviceSpec, dur: f64) -> KernelSpec {
    KernelSpec::from_launch(
        device,
        LaunchConfig::dense(216 * 8, 1024),
        Seconds::new(dur),
    )
    .with_sm_demand(Fraction::new(0.05))
    .with_bw_demand(Fraction::new(0.02))
    .with_host_gap(Seconds::new(dur * 0.3))
}

fn client(device: &DeviceSpec, id: u64, kernels: usize) -> ClientProgram {
    let mut t = TaskProgram::new(TaskId::new(id), "bench", MemBytes::from_mib(128));
    t.repeat_kernel(kernel(device, 0.1), kernels);
    let mut c = ClientProgram::new("bench");
    c.push_task(t);
    c
}

fn bench_solver(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let solver = ContentionSolver::new(device.clone(), 0.002);
    let mut group = c.benchmark_group("engine/contention_solver");
    for n in [2usize, 8, 48] {
        let kernels: Vec<KernelSpec> = (0..n).map(|_| kernel(&device, 1.0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &kernels, |b, kernels| {
            let contenders: Vec<Contender<'_>> = kernels
                .iter()
                .map(|k| Contender {
                    kernel: k,
                    partition: Fraction::ONE,
                })
                .collect();
            b.iter(|| black_box(solver.solve(&contenders)))
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let mut group = c.benchmark_group("engine/full_run");
    for clients in [1usize, 8, 48] {
        let kernels_per_client = 50usize;
        group.throughput(Throughput::Elements((clients * kernels_per_client) as u64));
        group.bench_with_input(
            BenchmarkId::new("mps_clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let programs: Vec<ClientProgram> = (0..clients)
                        .map(|i| client(&device, i as u64, kernels_per_client))
                        .collect();
                    let config =
                        EngineConfig::new(device.clone(), SharingMode::mps_uniform(clients));
                    black_box(Engine::new(config, programs).unwrap().run().unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_engine);
criterion_main!(benches);
