//! Raw simulator and plan-search performance: contention-solver scaling
//! with client count, end-to-end engine event throughput (including a
//! gap-heavy run that stresses the resident-set rate cache), exhaustive
//! planning at n = 10, annealing on an online-arrival-style queue, and
//! memoized vs from-scratch plan scoring.
//!
//! `make bench` runs this with `MPSHARE_BENCH_JSON` set, committing the
//! per-scenario medians to `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpshare_core::{
    anneal, workflow_profile, AnnealConfig, MetricPriority, PlanWarmState, Planner,
    PlannerStrategy, WorkflowProfile,
};
use mpshare_gpusim::{
    ClientProgram, ContentionSolver, DeviceSpec, Engine, EngineConfig, EngineScratch, KernelSpec,
    LaunchConfig, PreparedContender, SharingMode, SolveScratch, TaskProgram, ValidatedPrograms,
};
use mpshare_profiler::ProfileStore;
use mpshare_types::{Fraction, MemBytes, Seconds, TaskId};
use mpshare_workloads::QueueGenerator;
use std::hint::black_box;

fn kernel(device: &DeviceSpec, dur: f64) -> KernelSpec {
    KernelSpec::from_launch(
        device,
        LaunchConfig::dense(216 * 8, 1024),
        Seconds::new(dur),
    )
    .with_sm_demand(Fraction::new(0.05))
    .with_bw_demand(Fraction::new(0.02))
    .with_host_gap(Seconds::new(dur * 0.3))
}

fn client(device: &DeviceSpec, id: u64, kernels: usize) -> ClientProgram {
    let mut t = TaskProgram::new(TaskId::new(id), "bench", MemBytes::from_mib(128));
    t.repeat_kernel(kernel(device, 0.1), kernels);
    let mut c = ClientProgram::new("bench");
    c.push_task(t);
    c
}

fn bench_solver(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let solver = ContentionSolver::new(device.clone(), 0.002);
    let mut group = c.benchmark_group("engine/contention_solver");
    for n in [2usize, 8, 48] {
        let kernels: Vec<KernelSpec> = (0..n).map(|_| kernel(&device, 1.0)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &kernels, |b, kernels| {
            // Measure the engine's actual hot path: prepared contenders,
            // recycled scratch, allocation-free output buffer. One
            // unmeasured call grows the scratch to full size so the loop
            // never pays first-iteration growth (the old `solve` form's
            // per-call Vec churn showed up as a 4x max/median outlier at
            // n = 48).
            let prepared: Vec<PreparedContender> = kernels
                .iter()
                .map(|k| solver.prepare(k, Fraction::ONE))
                .collect();
            let mut scratch = SolveScratch::with_capacity(prepared.len());
            let mut out = Vec::with_capacity(prepared.len());
            solver.solve_prepared_into(&prepared, &mut scratch, &mut out);
            b.iter(|| {
                solver.solve_prepared_into(&prepared, &mut scratch, &mut out);
                black_box(out.last());
            })
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let mut group = c.benchmark_group("engine/full_run");
    for clients in [1usize, 8, 48] {
        let kernels_per_client = 50usize;
        group.throughput(Throughput::Elements((clients * kernels_per_client) as u64));
        group.bench_with_input(
            BenchmarkId::new("mps_clients", clients),
            &clients,
            |b, &clients| {
                // Steady-state replay form: the roster is validated once
                // and round-trips through every run together with the
                // engine scratch — after the first iteration the
                // simulation itself allocates nothing (pinned by
                // tests/alloc_gate.rs) and no per-run clone or
                // re-validation is measured.
                let programs: Vec<ClientProgram> = (0..clients)
                    .map(|i| client(&device, i as u64, kernels_per_client))
                    .collect();
                let config = EngineConfig::new(device.clone(), SharingMode::mps_uniform(clients));
                let mut roster = Some(ValidatedPrograms::new(&device, programs).unwrap());
                let mut scratch = EngineScratch::new();
                b.iter(|| {
                    let engine = Engine::new_prevalidated(
                        config.clone(),
                        roster.take().unwrap(),
                        std::mem::take(&mut scratch),
                    )
                    .unwrap();
                    let (result, _stats, recycled_roster, recycled) =
                        engine.run_recycling().unwrap();
                    roster = Some(recycled_roster);
                    scratch = recycled;
                    black_box(result.makespan);
                })
            },
        );
    }
    group.finish();
}

/// Like [`client`], but with host gaps much longer than the kernels, so
/// clients keep leaving and re-entering the resident set. Most events are
/// then pure time advancement for the cached rate solution.
fn gap_heavy_client(device: &DeviceSpec, id: u64, kernels: usize) -> ClientProgram {
    let dur = 0.05 + (id % 16) as f64 * 0.003;
    let k = KernelSpec::from_launch(
        device,
        LaunchConfig::dense(216 * 8, 1024),
        Seconds::new(dur),
    )
    .with_sm_demand(Fraction::new(0.05))
    .with_bw_demand(Fraction::new(0.02))
    .with_host_gap(Seconds::new(dur * 6.0));
    let mut t = TaskProgram::new(TaskId::new(id), "bench-gap", MemBytes::from_mib(128));
    t.repeat_kernel(k, kernels);
    let mut c = ClientProgram::new("bench-gap");
    c.push_task(t);
    c.arrival = Seconds::new(id as f64 * 0.037);
    c
}

fn bench_engine_gap_heavy(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let mut group = c.benchmark_group("engine/gap_heavy_run");
    let clients = 48usize;
    let kernels_per_client = 30usize;
    group.throughput(Throughput::Elements((clients * kernels_per_client) as u64));
    group.bench_with_input(
        BenchmarkId::new("mps_clients", clients),
        &clients,
        |b, &clients| {
            let programs: Vec<ClientProgram> = (0..clients)
                .map(|i| gap_heavy_client(&device, i as u64, kernels_per_client))
                .collect();
            let config = EngineConfig::new(device.clone(), SharingMode::mps_uniform(clients));
            let mut roster = Some(ValidatedPrograms::new(&device, programs).unwrap());
            let mut scratch = EngineScratch::new();
            b.iter(|| {
                let engine = Engine::new_prevalidated(
                    config.clone(),
                    roster.take().unwrap(),
                    std::mem::take(&mut scratch),
                )
                .unwrap();
                let (result, _stats, recycled_roster, recycled) = engine.run_recycling().unwrap();
                roster = Some(recycled_roster);
                scratch = recycled;
                black_box(result.makespan);
            })
        },
    );
    // The same workload with the incremental contention fast path disabled:
    // the spread against `mps_clients/48` is the measured benefit of the
    // single-join/leave re-solve on a churn-heavy resident set.
    group.bench_with_input(
        BenchmarkId::new("full_resolve", clients),
        &clients,
        |b, &clients| {
            let programs: Vec<ClientProgram> = (0..clients)
                .map(|i| gap_heavy_client(&device, i as u64, kernels_per_client))
                .collect();
            let config = EngineConfig::new(device.clone(), SharingMode::mps_uniform(clients))
                .with_forced_full_resolve(true);
            let mut roster = Some(ValidatedPrograms::new(&device, programs).unwrap());
            let mut scratch = EngineScratch::new();
            b.iter(|| {
                let engine = Engine::new_prevalidated(
                    config.clone(),
                    roster.take().unwrap(),
                    std::mem::take(&mut scratch),
                )
                .unwrap();
                let (result, _stats, recycled_roster, recycled) = engine.run_recycling().unwrap();
                roster = Some(recycled_roster);
                scratch = recycled;
                black_box(result.makespan);
            })
        },
    );
    group.finish();
}

/// A seeded mixed queue with profiles, mirroring the harness's
/// online-arrival experiment population (the two pathological benchmarks
/// are excluded there for the same reasons).
fn profiled_queue(device: &DeviceSpec, seed: u64, n: usize) -> Vec<WorkflowProfile> {
    let mut generator = QueueGenerator::new(seed);
    generator.weights[1] = 0.0; // Epsilon: hour-long tasks dominate everything
    generator.weights[6] = 0.0; // WarpX: 60 GiB footprints limit grouping
    let specs = generator.sample_queue(n);
    let mut store = ProfileStore::new();
    store
        .profile_workflows(device, &specs)
        .expect("profiling the bench queue");
    specs
        .iter()
        .map(|w| workflow_profile(&store, w).expect("aggregating workflow profile"))
        .collect()
}

fn bench_plan_search(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let mut group = c.benchmark_group("planner/search");

    // Exhaustive set-partition search at n = 10 (Bell(10) = 115 975
    // candidate partitions, all scored through the subset memo).
    let profiles10 = profiled_queue(&device, 42, 10);
    let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
    group.bench_function("exhaustive_n10", |b| {
        b.iter(|| {
            black_box(
                planner
                    .plan(&profiles10, PlannerStrategy::Exhaustive)
                    .unwrap(),
            )
        })
    });

    // The branch-and-bound ceiling: n = 12 (Bell(12) = 4 213 597 raw
    // partitions, ~36x the n = 10 tree) is tractable only because the
    // admissible score bound prunes most of the enumeration.
    let profiles12bb = profiled_queue(&device, 42, 12);
    group.bench_function("exhaustive_n12", |b| {
        b.iter(|| {
            black_box(
                planner
                    .plan(&profiles12bb, PlannerStrategy::Exhaustive)
                    .unwrap(),
            )
        })
    });

    // Annealing on an online-arrival-sized queue (12 workflows, the
    // harness's 3 bursts of 4), from a fixed Auto seed plan.
    let profiles12 = profiled_queue(&device, 11, 12);
    let seed_plan = planner.plan(&profiles12, PlannerStrategy::Auto).unwrap();
    group.bench_function("anneal_ext_online", |b| {
        b.iter(|| {
            black_box(anneal(
                &planner,
                &device,
                &profiles12,
                &seed_plan,
                AnnealConfig::default(),
            ))
        })
    });

    // Constructive planning at the device's 48-client maximum: the
    // best-fit cap sweep re-estimates the same trial groups for every
    // cap, the heaviest consumer of the shared memo.
    let profiles48 = profiled_queue(&device, 77, 48);
    group.bench_function("greedy_n48", |b| {
        b.iter(|| black_box(planner.plan(&profiles48, PlannerStrategy::Greedy).unwrap()))
    });
    group.bench_function("bestfit_n48", |b| {
        b.iter(|| black_box(planner.plan(&profiles48, PlannerStrategy::BestFit).unwrap()))
    });

    group.finish();
}

/// Warm-started replanning: the online scheduler's steady-state loop,
/// where consecutive exhaustive planning calls see queues differing by
/// one dispatch (leave) and/or one arrival (join).
fn bench_warm_planner(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
    let mut group = c.benchmark_group("planner/warm");

    let pool = profiled_queue(&device, 42, 16);
    let n = 10usize;

    // Same queue replanned with carried state: every estimate is a memo
    // hit and the previous plan seeds the branch-and-bound's incumbent
    // floor. The spread against planner/search/exhaustive_n10 is the
    // warm-start win on an unchanged queue.
    let profiles10: Vec<WorkflowProfile> = pool[..n].to_vec();
    let ids10: Vec<u64> = (0..n as u64).collect();
    let mut steady = PlanWarmState::new();
    planner
        .plan_warm(
            &profiles10,
            &ids10,
            PlannerStrategy::Exhaustive,
            &mut steady,
        )
        .unwrap();
    group.bench_function("warm_vs_cold_n10", |b| {
        b.iter(|| {
            black_box(
                planner
                    .plan_warm(
                        &profiles10,
                        &ids10,
                        PlannerStrategy::Exhaustive,
                        &mut steady,
                    )
                    .unwrap(),
            )
        })
    });

    // Rolling churn: every call drops the queue front (dispatched) and
    // appends a fresh arrival, so each iteration pays a memo translation
    // plus the floor-seeded re-search — the full online replan cost.
    let mut queue: Vec<(u64, WorkflowProfile)> =
        (0..n).map(|i| (i as u64, pool[i].clone())).collect();
    let mut next_id = n as u64;
    let mut churn = PlanWarmState::new();
    group.bench_function("online_churn_replan", |b| {
        b.iter(|| {
            queue.remove(0);
            queue.push((next_id, pool[next_id as usize % pool.len()].clone()));
            next_id += 1;
            let profiles: Vec<WorkflowProfile> = queue.iter().map(|(_, p)| p.clone()).collect();
            let ids: Vec<u64> = queue.iter().map(|(id, _)| *id).collect();
            black_box(
                planner
                    .plan_warm(&profiles, &ids, PlannerStrategy::Exhaustive, &mut churn)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// The observability overhead gate: the same runner-level MPS workload
/// (the layer carrying the obs instrumentation — engine stats, counters,
/// daemon events) with the global recorder off and on. The `_disabled`
/// median must stay the no-recording baseline; `_enabled` is expected to
/// sit within a few percent of it (<3 % target, checked against
/// BENCH_engine.json).
fn bench_recorder_overhead(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let clients = 8usize;
    let kernels_per_client = 50usize;
    let run_once = || {
        let programs: Vec<ClientProgram> = (0..clients)
            .map(|i| client(&device, i as u64, kernels_per_client))
            .collect();
        let runner = mpshare_mps::GpuRunner::new(device.clone());
        black_box(
            runner
                .run(&mpshare_mps::GpuSharing::mps_default(clients), programs)
                .unwrap(),
        )
    };
    let mut group = c.benchmark_group("engine/recorder_overhead");
    group.throughput(Throughput::Elements((clients * kernels_per_client) as u64));
    mpshare_obs::set_enabled(false);
    group.bench_function("disabled", |b| b.iter(run_once));
    mpshare_obs::set_enabled(true);
    group.bench_function("enabled", |b| b.iter(run_once));
    mpshare_obs::set_enabled(false);
    // Keep the recorder's buffers from growing across iterations.
    mpshare_obs::recorder().drain();
    group.finish();
}

fn bench_timeline_overhead(c: &mut Criterion) {
    // Cost of the timeline store itself: span pushes plus quantile
    // observations through the guarded facade. The disabled variant
    // must measure as a single relaxed atomic load per call — the
    // zero-cost-when-off claim the obs layer makes. Large enough that
    // the guarded calls dominate the fixed per-iteration reset, so the
    // bench gate compares call cost rather than scheduler jitter.
    let samples = 16384usize;
    let run_once = || {
        // Start each iteration from an empty store so the enabled
        // variant never hits the capacity cap's cheaper drop path.
        mpshare_obs::timelines().reset();
        for i in 0..samples {
            let t = i as f64;
            mpshare_obs::series_push_span(mpshare_obs::series::DEVICE_SM_UTIL, t, 1.0, 0.5);
            mpshare_obs::quantile_observe(mpshare_obs::series::CLIENT_TURNAROUND, t);
        }
        black_box(samples)
    };
    let mut group = c.benchmark_group("engine/timeline_overhead");
    group.throughput(Throughput::Elements(2 * samples as u64));
    mpshare_obs::set_enabled(false);
    group.bench_function("disabled", |b| b.iter(run_once));
    mpshare_obs::set_enabled(true);
    group.bench_function("enabled", |b| b.iter(run_once));
    mpshare_obs::set_enabled(false);
    mpshare_obs::timelines().reset();
    group.finish();
}

criterion_group!(
    benches,
    bench_solver,
    bench_engine,
    bench_engine_gap_heavy,
    bench_plan_search,
    bench_warm_planner,
    bench_recorder_overhead,
    bench_timeline_overhead
);
criterion_main!(benches);
