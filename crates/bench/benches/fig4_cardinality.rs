//! Regenerates the paper's Figure 4 (cardinality sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::fig4;
use mpshare_workloads::BenchmarkKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();

    for clients in [2usize, 8, 24] {
        c.bench_function(&format!("fig4/athena_2x{clients}"), |b| {
            b.iter(|| {
                fig4::run_config(black_box(&device), BenchmarkKind::AthenaPk, 2, clients).unwrap()
            })
        });
    }
    c.bench_function("fig4/lammps_2x8", |b| {
        b.iter(|| fig4::run_config(black_box(&device), BenchmarkKind::Lammps, 2, 8).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
