//! Regenerates the paper's Figure 3 (SW power-capping time) on the hot
//! combination (10: MHD 4x + LAMMPS 4x pairs).

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::combos;
use mpshare_workloads::table3_combinations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let combo = table3_combinations().into_iter().nth(9).unwrap();

    c.bench_function("fig3/hot_combination_capping", |b| {
        b.iter(|| {
            let r = combos::run_combination(black_box(&device), black_box(&combo)).unwrap();
            assert!(r.mps.capped_fraction > 0.0);
            black_box(r)
        })
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
