//! Regenerates the paper's Figure 5 (scheduling configuration at constant
//! total work).

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::fig5;
use mpshare_workloads::BenchmarkKind;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();

    for (s, p) in fig5::CONFIGS {
        c.bench_function(&format!("fig5/athena_{s}x{p}"), |b| {
            b.iter(|| fig5::run_config(black_box(&device), BenchmarkKind::AthenaPk, s, p).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
