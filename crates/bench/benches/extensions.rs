//! Benches for the extension artifacts: node scaling, the mechanism
//! comparison, the power-cap sweep, and the online dispatcher.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_core::{
    distribute_plan, workflow_profile, ArrivingWorkflow, ExecutorConfig, MetricPriority,
    NodeExecutor, OnlineScheduler, Planner, PlannerStrategy,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::{ext_mechanisms, ext_node, ext_powercap};
use mpshare_profiler::ProfileStore;
use mpshare_types::Seconds;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
use std::hint::black_box;

fn bench_experiments(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    c.bench_function("ext/mechanism_matrix", |b| {
        b.iter(|| ext_mechanisms::rows(black_box(&device)).unwrap())
    });
    c.bench_function("ext/powercap_sweep", |b| {
        b.iter(|| ext_powercap::points(black_box(&device)).unwrap())
    });
}

fn bench_node(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let q = ext_node::queue();
    let mut store = ProfileStore::new();
    store.profile_workflows(&device, &q).unwrap();
    let profiles: Vec<_> = q
        .iter()
        .map(|w| workflow_profile(&store, w).unwrap())
        .collect();
    let plan = Planner::new(device.clone(), MetricPriority::balanced_product())
        .plan(&profiles, PlannerStrategy::Auto)
        .unwrap();

    let mut group = c.benchmark_group("ext/node_scaling");
    for gpus in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(gpus), &gpus, |b, &gpus| {
            let node = distribute_plan(&device, &plan, &profiles, gpus, 0.0).unwrap();
            let exec = NodeExecutor::new(ExecutorConfig::new(device.clone()), gpus).unwrap();
            b.iter(|| exec.run_plan(black_box(&q), black_box(&node)).unwrap())
        });
    }
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let arrivals: Vec<ArrivingWorkflow> = (0..8)
        .map(|i| ArrivingWorkflow {
            spec: WorkflowSpec::uniform(
                if i % 2 == 0 {
                    BenchmarkKind::Kripke
                } else {
                    BenchmarkKind::AthenaPk
                },
                ProblemSize::X1,
                10,
            ),
            arrival: Seconds::new(i as f64 * 5.0),
        })
        .collect();
    let mut store = ProfileStore::new();
    let specs: Vec<WorkflowSpec> = arrivals.iter().map(|a| a.spec.clone()).collect();
    store.profile_workflows(&device, &specs).unwrap();
    let scheduler = OnlineScheduler::new(
        ExecutorConfig::new(device.clone()),
        Planner::new(device, MetricPriority::balanced_product()),
        PlannerStrategy::Auto,
    );
    c.bench_function("ext/online_dispatch", |b| {
        b.iter(|| {
            scheduler
                .run(black_box(&arrivals), black_box(&store))
                .unwrap()
        })
    });
    c.bench_function("ext/online_fifo_baseline", |b| {
        b.iter(|| {
            scheduler
                .run_fifo(black_box(&arrivals), black_box(&store))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench_experiments, bench_node, bench_online
}
criterion_main!(benches);
