//! Regenerates the paper's Table II (utilization statistics at 1x/4x).

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_gpusim::DeviceSpec;
use mpshare_harness::experiments::table2;
use mpshare_profiler::profile_task;
use mpshare_types::TaskId;
use mpshare_workloads::{benchmark, build_task, BenchmarkKind, ProblemSize};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();

    c.bench_function("table2/full_regeneration", |b| {
        b.iter(|| table2::rows(black_box(&device)).unwrap())
    });

    // One profiling run (Kripke 1x) — the unit cost of the offline pass.
    let model = benchmark(BenchmarkKind::Kripke);
    let task = build_task(&device, &model, ProblemSize::X1, TaskId::new(0)).unwrap();
    c.bench_function("table2/single_profile", |b| {
        b.iter(|| profile_task(black_box(&device), black_box(&task)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
