//! Ablations of the design choices called out in DESIGN.md §4.
//!
//! Each bench measures the runtime of planning+execution under one
//! configuration, and — more importantly — *prints the resulting metrics*
//! the first time it runs so `cargo bench` output doubles as the ablation
//! table:
//!
//! * interference rule on (paper greedy) vs. off (naive single group);
//! * partition strategies: uniform vs. demand-based vs. saturation-aware;
//! * planner strategies: greedy vs. best-fit vs. exhaustive;
//! * cardinality cap 2 vs. unbounded for a throughput-priority queue.

use criterion::{criterion_group, criterion_main, Criterion};
use mpshare_bench::experiment_criterion;
use mpshare_core::{
    single_group_plan, workflow_profile, AnnealConfig, Executor, ExecutorConfig, MetricPriority,
    PartitionStrategy, Planner, PlannerStrategy, WorkflowProfile,
};
use mpshare_gpusim::DeviceSpec;
use mpshare_profiler::ProfileStore;
use mpshare_workloads::{BenchmarkKind, ProblemSize, WorkflowSpec};
use std::hint::black_box;
use std::sync::OnceLock;

fn queue() -> Vec<WorkflowSpec> {
    vec![
        WorkflowSpec::uniform(BenchmarkKind::AthenaPk, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X1, 25),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X1, 20),
        WorkflowSpec::uniform(BenchmarkKind::ChollaGravity, ProblemSize::X4, 1),
        WorkflowSpec::uniform(BenchmarkKind::Kripke, ProblemSize::X4, 1),
    ]
}

fn profiles(device: &DeviceSpec, q: &[WorkflowSpec]) -> Vec<WorkflowProfile> {
    static STORE: OnceLock<ProfileStore> = OnceLock::new();
    let store = STORE.get_or_init(|| {
        let mut s = ProfileStore::new();
        s.profile_workflows(device, q).unwrap();
        s
    });
    q.iter()
        .map(|w| workflow_profile(store, w).unwrap())
        .collect()
}

fn report_once(name: &str, t: f64, e: f64) {
    println!("    [ablation] {name:<38} throughput {t:.3}x  efficiency {e:.3}x");
}

fn bench(c: &mut Criterion) {
    let device = DeviceSpec::a100x();
    let q = queue();
    let profs = profiles(&device, &q);
    let executor = Executor::new(ExecutorConfig::new(device.clone()));

    // --- interference rule on vs. off -----------------------------------
    // Two queues: a mixed mid-utilization one (where the rule is
    // conservative and best-fit recovers the gap) and a hot MHD+LAMMPS one
    // (where blind collocation actively loses to sequential — the case the
    // rule exists for).
    let hot_queue = vec![
        WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
        WorkflowSpec::uniform(BenchmarkKind::ChollaMhd, ProblemSize::X4, 1),
        WorkflowSpec::uniform(BenchmarkKind::Lammps, ProblemSize::X4, 2),
    ];
    let hot_profiles: Vec<WorkflowProfile> = {
        let mut s = ProfileStore::new();
        s.profile_workflows(&device, &hot_queue).unwrap();
        hot_queue
            .iter()
            .map(|w| workflow_profile(&s, w).unwrap())
            .collect()
    };
    for (label, queue, profiles) in [
        ("mixed queue", &q, &profs),
        ("hot queue", &hot_queue, &hot_profiles),
    ] {
        let planned = Planner::new(device.clone(), MetricPriority::Energy)
            .plan(profiles, PlannerStrategy::Greedy)
            .unwrap();
        let blind = single_group_plan(queue.len());
        let planned_report = executor.evaluate_plan(queue, &planned).unwrap();
        let blind_report = executor.evaluate_plan(queue, &blind).unwrap();
        report_once(
            &format!("{label}: interference-aware greedy"),
            planned_report.metrics.throughput_gain,
            planned_report.metrics.energy_efficiency_gain,
        );
        report_once(
            &format!("{label}: interference-blind group"),
            blind_report.metrics.throughput_gain,
            blind_report.metrics.energy_efficiency_gain,
        );
    }
    let planned = Planner::new(device.clone(), MetricPriority::Energy)
        .plan(&profs, PlannerStrategy::Greedy)
        .unwrap();
    let blind = single_group_plan(q.len());
    c.bench_function("ablation/interference_rule_on", |b| {
        b.iter(|| {
            executor
                .run_plan(black_box(&q), black_box(&planned))
                .unwrap()
        })
    });
    c.bench_function("ablation/interference_rule_off", |b| {
        b.iter(|| executor.run_plan(black_box(&q), black_box(&blind)).unwrap())
    });

    // --- partition strategies --------------------------------------------
    for (name, strategy) in [
        ("uniform", PartitionStrategy::Uniform),
        ("demand_based", PartitionStrategy::default_rightsized()),
        (
            "saturation_aware",
            PartitionStrategy::default_saturation_aware(),
        ),
    ] {
        let plan = Planner::new(device.clone(), MetricPriority::Energy)
            .with_partition_strategy(strategy)
            .plan(&profs, PlannerStrategy::Greedy)
            .unwrap();
        let report = executor.evaluate_plan(&q, &plan).unwrap();
        report_once(
            &format!("partitions: {name}"),
            report.metrics.throughput_gain,
            report.metrics.energy_efficiency_gain,
        );
        c.bench_function(&format!("ablation/partitions_{name}"), |b| {
            b.iter(|| executor.run_plan(black_box(&q), black_box(&plan)).unwrap())
        });
    }

    // --- planner strategies ------------------------------------------------
    for (name, strategy) in [
        ("greedy", PlannerStrategy::Greedy),
        ("bestfit", PlannerStrategy::BestFit),
        ("exhaustive", PlannerStrategy::Exhaustive),
    ] {
        let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
        let plan = planner.plan(&profs, strategy).unwrap();
        let report = executor.evaluate_plan(&q, &plan).unwrap();
        report_once(
            &format!("planner: {name}"),
            report.metrics.throughput_gain,
            report.metrics.energy_efficiency_gain,
        );
        c.bench_function(&format!("ablation/planner_{name}"), |b| {
            b.iter(|| planner.plan(black_box(&profs), strategy).unwrap())
        });
    }

    // --- annealed refinement -----------------------------------------------
    {
        let planner = Planner::new(device.clone(), MetricPriority::balanced_product());
        let plan = planner
            .plan_annealed(&profs, AnnealConfig::default())
            .unwrap();
        let report = executor.evaluate_plan(&q, &plan).unwrap();
        report_once(
            "planner: annealed (auto seed)",
            report.metrics.throughput_gain,
            report.metrics.energy_efficiency_gain,
        );
        c.bench_function("ablation/planner_annealed", |b| {
            b.iter(|| {
                planner
                    .plan_annealed(black_box(&profs), AnnealConfig::default())
                    .unwrap()
            })
        });
    }

    // --- cardinality cap ---------------------------------------------------
    let planner = Planner::new(device.clone(), MetricPriority::Throughput);
    for (name, cap) in [("cap_2", 2usize), ("cap_unbounded", 48)] {
        let plan = planner.greedy_with_cap(&profs, cap);
        let report = executor.evaluate_plan(&q, &plan).unwrap();
        report_once(
            &format!("cardinality {name}"),
            report.metrics.throughput_gain,
            report.metrics.energy_efficiency_gain,
        );
        c.bench_function(&format!("ablation/cardinality_{name}"), |b| {
            b.iter(|| executor.run_plan(black_box(&q), black_box(&plan)).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = bench
}
criterion_main!(benches);
