//! Multi-Instance GPU (MIG) partitioning.
//!
//! MIG slices an A100-class GPU into up to seven instances, each with an
//! isolated path through the memory system — full compute *and* bandwidth
//! isolation, unlike MPS (paper §II-B). The price is flexibility: the
//! partition layout can only change while the GPU is idle, and the slice
//! granularity is coarse (1/7ths of the device).

use mpshare_gpusim::DeviceSpec;
use mpshare_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// The number of compute slices an A100-class GPU exposes.
pub const TOTAL_SLICES: u32 = 7;

/// Standard MIG instance profiles (compute slices × memory slices is
/// simplified to compute slices here; the memory fraction tracks compute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigProfile {
    /// 1g — one slice.
    OneSlice,
    /// 2g — two slices.
    TwoSlice,
    /// 3g — three slices.
    ThreeSlice,
    /// 4g — four slices.
    FourSlice,
    /// 7g — the whole GPU as a single instance.
    SevenSlice,
}

impl MigProfile {
    pub fn slices(self) -> u32 {
        match self {
            MigProfile::OneSlice => 1,
            MigProfile::TwoSlice => 2,
            MigProfile::ThreeSlice => 3,
            MigProfile::FourSlice => 4,
            MigProfile::SevenSlice => 7,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            MigProfile::OneSlice => "1g",
            MigProfile::TwoSlice => "2g",
            MigProfile::ThreeSlice => "3g",
            MigProfile::FourSlice => "4g",
            MigProfile::SevenSlice => "7g",
        }
    }
}

/// One configured MIG instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigInstance {
    pub profile: MigProfile,
    /// The sub-device this instance exposes.
    pub device: DeviceSpec,
}

/// A full MIG layout of one GPU.
///
/// ```
/// use mpshare_gpusim::DeviceSpec;
/// use mpshare_mps::{MigLayout, MigProfile};
///
/// let device = DeviceSpec::a100x();
/// let layout = MigLayout::new(&device, &[MigProfile::FourSlice, MigProfile::ThreeSlice]).unwrap();
/// assert_eq!(layout.instances().len(), 2);
/// assert_eq!(layout.unused_slices(), 0);
/// // Instances expose proportionally scaled sub-devices.
/// assert!(layout.instances()[0].device.num_sms > layout.instances()[1].device.num_sms);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigLayout {
    instances: Vec<MigInstance>,
    /// Slices not covered by any instance (their SMs sit dark).
    unused_slices: u32,
}

impl MigLayout {
    /// Builds a layout from instance profiles. Fails when the profiles
    /// exceed the seven available slices or the instance-count limit.
    pub fn new(parent: &DeviceSpec, profiles: &[MigProfile]) -> Result<Self> {
        if profiles.is_empty() {
            return Err(Error::InvalidConfig("MIG layout needs ≥1 instance".into()));
        }
        if profiles.len() as u32 > parent.max_mig_instances {
            return Err(Error::InvalidConfig(format!(
                "{} instances exceed the limit of {}",
                profiles.len(),
                parent.max_mig_instances
            )));
        }
        let used: u32 = profiles.iter().map(|p| p.slices()).sum();
        if used > TOTAL_SLICES {
            return Err(Error::InvalidConfig(format!(
                "profiles use {used} slices; only {TOTAL_SLICES} exist"
            )));
        }
        let instances = profiles
            .iter()
            .map(|&profile| {
                Ok(MigInstance {
                    profile,
                    device: parent.mig_slice(profile.slices(), TOTAL_SLICES)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MigLayout {
            instances,
            unused_slices: TOTAL_SLICES - used,
        })
    }

    pub fn instances(&self) -> &[MigInstance] {
        &self.instances
    }

    pub fn unused_slices(&self) -> u32 {
        self.unused_slices
    }

    /// Reconfigures the layout. MIG requires the GPU to be idle: callers
    /// pass whether any instance currently has resident work.
    pub fn reconfigure(
        &mut self,
        parent: &DeviceSpec,
        profiles: &[MigProfile],
        gpu_busy: bool,
    ) -> Result<()> {
        if gpu_busy {
            return Err(Error::InvalidState(
                "MIG reconfiguration requires an idle GPU".into(),
            ));
        }
        *self = MigLayout::new(parent, profiles)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    #[test]
    fn seven_single_slices_fit_exactly() {
        let l = MigLayout::new(&dev(), &[MigProfile::OneSlice; 7]).unwrap();
        assert_eq!(l.instances().len(), 7);
        assert_eq!(l.unused_slices(), 0);
    }

    #[test]
    fn oversubscribed_slices_are_rejected() {
        assert!(MigLayout::new(&dev(), &[MigProfile::FourSlice, MigProfile::FourSlice]).is_err());
        assert!(MigLayout::new(&dev(), &[MigProfile::OneSlice; 8]).is_err());
        assert!(MigLayout::new(&dev(), &[]).is_err());
    }

    #[test]
    fn mixed_layout_tracks_unused_slices() {
        let l = MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::TwoSlice]).unwrap();
        assert_eq!(l.unused_slices(), 2);
    }

    #[test]
    fn instances_expose_scaled_devices() {
        let l = MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        let d3 = &l.instances()[0].device;
        let d4 = &l.instances()[1].device;
        assert!(d3.num_sms < d4.num_sms);
        assert!(d3.num_sms >= 108 * 3 / 7 - 1);
        assert!(d3.memory_bandwidth_bytes_per_sec < d4.memory_bandwidth_bytes_per_sec);
    }

    #[test]
    fn reconfigure_requires_idle_gpu() {
        let d = dev();
        let mut l = MigLayout::new(&d, &[MigProfile::SevenSlice]).unwrap();
        let err = l
            .reconfigure(&d, &[MigProfile::OneSlice; 7], true)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)));
        l.reconfigure(&d, &[MigProfile::OneSlice; 7], false)
            .unwrap();
        assert_eq!(l.instances().len(), 7);
    }

    #[test]
    fn profile_names_match_nvidia_convention() {
        assert_eq!(MigProfile::OneSlice.name(), "1g");
        assert_eq!(MigProfile::SevenSlice.name(), "7g");
        assert_eq!(MigProfile::SevenSlice.slices(), 7);
    }
}
