//! A uniform entry point for running client programs under any sharing
//! mechanism.
//!
//! The profiler, scheduler, and experiment harness all execute workloads
//! through [`GpuRunner::run`], selecting the mechanism with [`GpuSharing`]:
//! sequential (the paper's baseline), time slicing, MPS with per-client
//! partitions, or MIG with an instance layout and a program→instance
//! assignment.
//!
//! For MIG, each instance is an isolated sub-device simulated by its own
//! engine; the per-instance timelines are merged into a single board-level
//! [`Telemetry`] (utilizations weighted by slice size, powers summed, with
//! idle instances and unused slices drawing their share of idle power) so
//! that every mechanism reports comparable metrics.

use crate::mig::MigLayout;
use crate::timeslice::TimeSliceConfig;
use mpshare_gpusim::{
    ClientOutcome, ClientProgram, DeviceSpec, Engine, EngineConfig, EngineStats, FaultPlan,
    RunResult, Segment, SharingMode, Telemetry,
};
use mpshare_types::{Error, Fraction, Power, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Observability hook for one engine run: hot-path counters from
/// [`EngineStats`], fault/goodput accounting, timeline series (device and
/// per-client state over simulated time, per-mechanism occupancy and
/// turnaround — see `mpshare_obs::timeline`), and a Daemon-track span
/// covering the simulated makespan. A no-op unless recording is enabled.
///
/// `shares[i]` is client `i`'s SM-partition fraction under the mechanism
/// (empty slice ⇒ unpartitioned, i.e. 1.0 for everyone). Emission happens
/// here, post-run, derived exactly from the immutable [`RunResult`]'s
/// piecewise-constant telemetry segments and client outcomes: the engine
/// itself stays observability-free, so the zero-alloc steady state and
/// bit-identity of results are untouched by recording.
fn record_engine_run(
    mode: &'static str,
    clients: usize,
    faults_planned: u64,
    result: &RunResult,
    stats: EngineStats,
    shares: &[f64],
) {
    if !mpshare_obs::enabled() {
        return;
    }
    use mpshare_obs::names;
    mpshare_obs::counter_add(names::ENGINE_RUNS, 1);
    mpshare_obs::counter_add(names::ENGINE_EVENTS, stats.events);
    mpshare_obs::counter_add(names::ENGINE_RATE_SOLVES, stats.rate_solves);
    mpshare_obs::counter_add(names::ENGINE_INCREMENTAL_SOLVES, stats.incremental_solves);
    mpshare_obs::counter_add(names::ENGINE_FULL_SOLVES, stats.full_solves);
    mpshare_obs::counter_add(names::ENGINE_RESIDENT_CHANGES, stats.resident_changes);
    mpshare_obs::observe(
        names::ENGINE_QUEUE_DEPTH,
        &mpshare_obs::DEPTH_BUCKETS,
        stats.max_queue_depth as f64,
    );
    mpshare_obs::counter_add(names::ENGINE_COMPONENT_TICKS, stats.ticks);
    if stats.heap_max_depth > 0 {
        mpshare_obs::observe(
            names::ENGINE_HEAP_DEPTH,
            &mpshare_obs::DEPTH_BUCKETS,
            stats.heap_max_depth as f64,
        );
    }
    mpshare_obs::gauge_add(names::ENGINE_SIM_SECONDS, result.makespan.value());
    mpshare_obs::observe(
        names::GROUP_MAKESPAN_SECONDS,
        &mpshare_obs::SIM_SECONDS_BUCKETS,
        result.makespan.value(),
    );
    mpshare_obs::counter_add(names::FAULTS_INJECTED, faults_planned);
    let failed = result.clients.iter().filter(|c| c.failed).count() as u64;
    mpshare_obs::counter_add(names::CLIENTS_FAILED, failed);
    mpshare_obs::counter_add(names::TASKS_COMPLETED, result.tasks_completed as u64);
    mpshare_obs::counter_add(names::TASKS_FAILED, result.tasks_failed as u64);
    mpshare_obs::gauge_add(names::WASTED_ENERGY_JOULES, result.wasted_energy.joules());

    // Timeline series: every piecewise-constant telemetry segment becomes
    // one span sample, so the store's integrals and utilization CDFs are
    // exact (no sampling). Device-level state feeds the global series and
    // the per-mechanism occupancy track.
    use mpshare_obs::series;
    let tl = mpshare_obs::timelines();
    let occupancy = series::occupancy(mode);
    for s in result.telemetry.segments() {
        let (t, dur) = (s.start.value(), s.duration().value());
        tl.series_push_span(series::DEVICE_SM_UTIL, t, dur, s.sm_util);
        tl.series_push_span(series::DEVICE_BW_UTIL, t, dur, s.bw_util);
        tl.series_push_span(series::DEVICE_POWER_W, t, dur, s.power.watts());
        tl.series_push_span(&occupancy, t, dur, s.sm_util);
    }
    // Per-client state over the client's [started, finished] residency:
    // residency itself, the mechanism-granted SM share, and the mean
    // dynamic power over the residency (dyn_energy ÷ residency — exact as
    // an integral, since energy was integrated exactly engine-side).
    // Turnarounds feed the exact quantile tracks; failed clients are
    // excluded (their "finish" is the abort, not a completion).
    let mech_turnaround = series::mechanism_turnaround(mode);
    for (i, c) in result.clients.iter().enumerate() {
        let share = shares.get(i).copied().unwrap_or(1.0);
        let start = c.started.value();
        let dur = (c.finished.value() - start).max(0.0);
        tl.series_push_span(&series::client(&c.label, "resident"), start, dur, 1.0);
        tl.series_push_span(&series::client(&c.label, "sm_share"), start, dur, share);
        if dur > 0.0 {
            tl.series_push_span(
                &series::client(&c.label, "dyn_power_w"),
                start,
                dur,
                c.dyn_energy.joules() / dur,
            );
        }
        if !c.failed {
            tl.quantile_observe(series::CLIENT_TURNAROUND, c.finished.value());
            tl.quantile_observe(&mech_turnaround, c.finished.value());
        }
    }
    let (completed, failed_tasks) = (result.tasks_completed, result.tasks_failed);
    let (events, solves) = (stats.events, stats.rate_solves);
    let (incremental, full) = (stats.incremental_solves, stats.full_solves);
    let queue_depth = stats.max_queue_depth;
    let (ticks, heap_depth) = (stats.ticks, stats.heap_max_depth);
    let makespan = result.makespan.value();
    mpshare_obs::emit(
        mpshare_obs::Track::Daemon,
        "engine.run",
        Some(0.0),
        Some(makespan),
        || {
            serde_json::json!({
                "mode": mode,
                "clients": clients,
                "tasks_completed": completed,
                "tasks_failed": failed_tasks,
                "events": events,
                "rate_solves": solves,
                "incremental_solves": incremental,
                "full_solves": full,
                "max_queue_depth": queue_depth,
                "component_ticks": ticks,
                "heap_max_depth": heap_depth,
            })
        },
    );
}

/// Records a fault-domain rewrite: the mechanism's [`FailureDomain`]
/// transforming the submitted client-fault plan (widening under a shared
/// server/process, restriction to instance members under MIG).
fn record_domain_rewrite(mechanism: &'static str, domain: FailureDomain, faults: &FaultPlan) {
    if faults.is_empty() || !mpshare_obs::enabled() {
        return;
    }
    mpshare_obs::counter_add(mpshare_obs::names::FAULT_DOMAIN_REWRITES, 1);
    let n = faults.len();
    mpshare_obs::emit(
        mpshare_obs::Track::Daemon,
        "daemon.fault_domain_rewrite",
        None,
        None,
        || {
            serde_json::json!({
                "mechanism": mechanism,
                "domain": format!("{domain:?}"),
                "faults": n,
            })
        },
    );
}

/// How far a fatal client fault spreads under a sharing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureDomain {
    /// One shared MPS server: a fatal fault kills every resident client
    /// (the documented MPS semantics — no fault containment).
    SharedServer,
    /// One fused process (CUDA Streams): a fault in any stream kills the
    /// process, and with it every stream.
    SharedProcess,
    /// The fault is contained to the faulting client (sequential and
    /// time-sliced execution: separate processes, separate contexts).
    PerClient,
    /// The fault is contained to the clients sharing the faulting
    /// client's MIG instance; other instances are hardware-isolated.
    PerInstance,
}

/// Which sharing mechanism to run under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GpuSharing {
    /// Jobs run one after another in queue order — the paper's baseline.
    Sequential,
    /// The driver's default time-sliced scheduler.
    TimeSliced(TimeSliceConfig),
    /// CUDA MPS with per-client SM partitions (`partitions[i]` for
    /// program `i`).
    Mps { partitions: Vec<Fraction> },
    /// CUDA Streams: the programs run as streams of one fused process —
    /// concurrent, no partitions, no per-client MPS pressure, but also no
    /// memory protection between them (§II-B).
    Streams,
    /// MIG: `assignment[i]` is the index of the instance program `i` runs
    /// on. Programs sharing an instance run under MPS (full partitions)
    /// within it.
    Mig {
        layout: MigLayout,
        assignment: Vec<usize>,
    },
}

impl GpuSharing {
    /// MPS with all clients unrestricted (the MPS default).
    pub fn mps_default(clients: usize) -> GpuSharing {
        GpuSharing::Mps {
            partitions: vec![Fraction::ONE; clients],
        }
    }

    /// The mechanism's failure domain: how far a fatal client fault
    /// spreads. This is what makes the mechanism taxonomy failure-aware —
    /// collocation gains trade against blast radius.
    pub fn failure_domain(&self) -> FailureDomain {
        match self {
            GpuSharing::Mps { .. } => FailureDomain::SharedServer,
            GpuSharing::Streams => FailureDomain::SharedProcess,
            GpuSharing::Sequential | GpuSharing::TimeSliced(_) => FailureDomain::PerClient,
            GpuSharing::Mig { .. } => FailureDomain::PerInstance,
        }
    }
}

/// Runs client programs on one GPU under a chosen sharing mechanism.
///
/// ```
/// use mpshare_gpusim::{ClientProgram, DeviceSpec, KernelSpec, LaunchConfig, TaskProgram};
/// use mpshare_mps::{GpuRunner, GpuSharing};
/// use mpshare_types::{Fraction, MemBytes, Seconds, TaskId};
///
/// let device = DeviceSpec::a100x();
/// let kernel = KernelSpec::from_launch(&device, LaunchConfig::dense(216, 1024), Seconds::new(1.0))
///     .with_sm_demand(Fraction::new(0.3));
/// let mut task = TaskProgram::new(TaskId::new(0), "demo", MemBytes::from_mib(256));
/// task.push_kernel(kernel);
/// let mut program = ClientProgram::new("demo");
/// program.push_task(task);
///
/// let result = GpuRunner::new(device)
///     .run(&GpuSharing::mps_default(1), vec![program])
///     .unwrap();
/// assert_eq!(result.tasks_completed, 1);
/// assert!((result.makespan.value() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct GpuRunner {
    device: DeviceSpec,
    sharing_overhead: f64,
    record_events: bool,
    force_full_resolve: bool,
    legacy_loop: bool,
}

impl GpuRunner {
    pub fn new(device: DeviceSpec) -> Self {
        GpuRunner {
            device,
            sharing_overhead: 0.0,
            record_events: false,
            force_full_resolve: false,
            legacy_loop: false,
        }
    }

    /// Records a discrete-event log on every run (task/kernel boundaries,
    /// throttle transitions) — needed for kernel-level trace export.
    pub fn with_event_log(mut self, record: bool) -> Self {
        self.record_events = record;
        self
    }

    /// Disables the engine's incremental re-solve fast path on every run
    /// (including each MIG instance engine), forcing a full contention
    /// solve at every resident-set change. Results are bit-identical with
    /// the fast path — the fuzz harness runs both and compares.
    pub fn with_forced_full_resolve(mut self, force: bool) -> Self {
        self.force_full_resolve = force;
        self
    }

    /// Sets the device-level per-co-runner MPS overhead (shared scheduling
    /// hardware / L2 pressure); see `mpshare-gpusim`'s contention model.
    pub fn with_sharing_overhead(mut self, overhead: f64) -> Self {
        self.sharing_overhead = overhead;
        self
    }

    /// Drives every engine run (including each MIG instance engine) with
    /// the historical direct loop instead of the component core. Results
    /// are bit-identical either way — the fuzz oracle and
    /// `tests/perf_equivalence.rs` run both and compare.
    pub fn with_legacy_loop(mut self, legacy: bool) -> Self {
        self.legacy_loop = legacy;
        self
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Executes `programs` under `sharing` and returns the merged result.
    pub fn run(&self, sharing: &GpuSharing, programs: Vec<ClientProgram>) -> Result<RunResult> {
        self.run_with_faults(sharing, programs, &FaultPlan::default())
    }

    /// Like [`GpuRunner::run`], but injects `faults`. The plan lists
    /// *client* faults (by program index); this is where the mechanism's
    /// [`FailureDomain`] takes effect:
    ///
    /// * MPS and Streams widen every fault to the shared domain — the
    ///   origin's fatal fault takes down every unfinished sibling.
    /// * Sequential and time slicing keep faults contained to the origin.
    /// * MIG restricts each instance's engine to the faults of its own
    ///   members, widened within the instance (programs collocated on one
    ///   instance share its MPS server); other instances never see them.
    pub fn run_with_faults(
        &self,
        sharing: &GpuSharing,
        programs: Vec<ClientProgram>,
        faults: &FaultPlan,
    ) -> Result<RunResult> {
        match sharing {
            GpuSharing::Sequential => self.run_engine(
                "sequential",
                SharingMode::Sequential,
                programs,
                faults.clone(),
            ),
            GpuSharing::TimeSliced(cfg) => self.run_engine(
                "time-sliced",
                cfg.to_sharing_mode(),
                programs,
                faults.clone(),
            ),
            GpuSharing::Mps { partitions } => {
                record_domain_rewrite("mps", FailureDomain::SharedServer, faults);
                self.run_engine(
                    "mps",
                    SharingMode::Mps {
                        partitions: partitions.clone(),
                    },
                    programs,
                    faults.widen_to_domain(),
                )
            }
            GpuSharing::Streams => {
                record_domain_rewrite("streams", FailureDomain::SharedProcess, faults);
                self.run_engine(
                    "streams",
                    SharingMode::Streams,
                    programs,
                    faults.widen_to_domain(),
                )
            }
            GpuSharing::Mig { layout, assignment } => {
                record_domain_rewrite("mig", FailureDomain::PerInstance, faults);
                self.run_mig(layout, assignment, programs, faults)
            }
        }
    }

    fn run_engine(
        &self,
        mode_label: &'static str,
        mode: SharingMode,
        programs: Vec<ClientProgram>,
        faults: FaultPlan,
    ) -> Result<RunResult> {
        let clients = programs.len();
        let faults_planned = faults.len() as u64;
        // Per-client SM shares for the timeline, captured before `mode`
        // moves into the config; built only when recording is on.
        let shares: Option<Vec<f64>> = mpshare_obs::enabled().then(|| match &mode {
            SharingMode::Mps { partitions } => partitions.iter().map(|p| p.value()).collect(),
            _ => Vec::new(),
        });
        let config = EngineConfig::new(self.device.clone(), mode)
            .with_sharing_overhead(self.sharing_overhead)
            .with_event_log(self.record_events)
            .with_forced_full_resolve(self.force_full_resolve)
            .with_legacy_loop(self.legacy_loop)
            .with_fault_plan(faults);
        let (result, stats) = Engine::new(config, programs)?.run_with_stats()?;
        record_engine_run(
            mode_label,
            clients,
            faults_planned,
            &result,
            stats,
            shares.as_deref().unwrap_or(&[]),
        );
        Ok(result)
    }

    fn run_mig(
        &self,
        layout: &MigLayout,
        assignment: &[usize],
        programs: Vec<ClientProgram>,
        faults: &FaultPlan,
    ) -> Result<RunResult> {
        if assignment.len() != programs.len() {
            return Err(Error::InvalidConfig(format!(
                "{} assignments for {} programs",
                assignment.len(),
                programs.len()
            )));
        }
        let n_instances = layout.instances().len();
        if let Some(&bad) = assignment.iter().find(|&&a| a >= n_instances) {
            return Err(Error::InvalidConfig(format!(
                "assignment to instance {bad}, but only {n_instances} exist"
            )));
        }

        // Partition the programs per instance, remembering original order.
        let mut per_instance: Vec<Vec<(usize, ClientProgram)>> = vec![Vec::new(); n_instances];
        for (idx, (program, &inst)) in programs.into_iter().zip(assignment).enumerate() {
            per_instance[inst].push((idx, program));
        }

        let mut sub_results: Vec<(usize, RunResult, Vec<usize>)> = Vec::new();
        for (inst, batch) in per_instance.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let (orig_indices, progs): (Vec<usize>, Vec<ClientProgram>) = batch.into_iter().unzip();
            let device = layout.instances()[inst].device.clone();
            // The instance sees only its members' faults, widened within
            // the instance: collocated programs share the instance's MPS
            // server, but the hardware wall stops anything wider.
            let instance_faults = faults.restrict(&orig_indices).widen_to_domain();
            let config = EngineConfig::new(
                device,
                SharingMode::Mps {
                    partitions: vec![Fraction::ONE; progs.len()],
                },
            )
            .with_sharing_overhead(self.sharing_overhead)
            .with_event_log(self.record_events)
            .with_forced_full_resolve(self.force_full_resolve)
            .with_legacy_loop(self.legacy_loop)
            .with_fault_plan(instance_faults.clone());
            let clients = progs.len();
            let (result, stats) = Engine::new(config, progs)?.run_with_stats()?;
            record_engine_run(
                "mig-instance",
                clients,
                instance_faults.len() as u64,
                &result,
                stats,
                // Instance members run under full MPS partitions.
                &[],
            );
            sub_results.push((inst, result, orig_indices));
        }

        self.merge_mig_results(layout, sub_results)
    }

    /// Merges per-instance results into one board-level result. Unused
    /// slices and instances that finished early keep drawing their share
    /// of idle power until the board-level makespan.
    fn merge_mig_results(
        &self,
        layout: &MigLayout,
        sub_results: Vec<(usize, RunResult, Vec<usize>)>,
    ) -> Result<RunResult> {
        let makespan = sub_results
            .iter()
            .map(|(_, r, _)| r.makespan)
            .fold(Seconds::ZERO, Seconds::max);

        // Board-level idle power not covered by any busy instance:
        // unused slices, plus the whole-board fraction MIG cannot slice.
        let covered_idle: f64 = sub_results
            .iter()
            .map(|(inst, _, _)| layout.instances()[*inst].device.idle_power.watts())
            .sum();
        let uncovered_idle = (self.device.idle_power.watts() - covered_idle).max(0.0);

        let parts: Vec<(&RunResult, &DeviceSpec)> = sub_results
            .iter()
            .map(|(inst, r, _)| (r, &layout.instances()[*inst].device))
            .collect();
        let telemetry = merge_parallel_telemetries(&self.device, &parts, makespan, uncovered_idle);

        // Client outcomes keep their original submission order.
        let mut clients: Vec<(usize, ClientOutcome)> = Vec::new();
        for (_, result, orig_indices) in &sub_results {
            for (client, &orig) in result.clients.iter().zip(orig_indices) {
                clients.push((orig, client.clone()));
            }
        }
        clients.sort_by_key(|(orig, _)| *orig);
        let clients: Vec<ClientOutcome> = clients.into_iter().map(|(_, c)| c).collect();
        let tasks_completed = clients.iter().map(|c| c.completions.len()).sum();
        let total_energy = telemetry.total_energy();

        // Fault records come back instance-local; remap origins to the
        // original submission indices and merge in firing order.
        let mut failures: Vec<mpshare_gpusim::FaultRecord> = Vec::new();
        for (_, result, orig_indices) in &sub_results {
            for rec in &result.failures {
                failures.push(mpshare_gpusim::FaultRecord {
                    at: rec.at,
                    origin: orig_indices[rec.origin],
                    victims: rec.victims,
                });
            }
        }
        failures.sort_by(|a, b| {
            a.at.partial_cmp(&b.at)
                .expect("finite fault times")
                .then_with(|| a.origin.cmp(&b.origin))
        });
        // Merge per-instance event logs, remapping instance-local client
        // indices (including fault origins in the payload) back to the
        // original submission indices. A stable sort by time keeps
        // same-instant events in instance order — deterministic, since
        // instances are visited in index order.
        let events = if self.record_events {
            let mut merged: Vec<mpshare_gpusim::Event> = Vec::new();
            for (_, result, orig_indices) in &sub_results {
                for ev in result.events.events() {
                    let mut ev = ev.clone();
                    if ev.client != mpshare_gpusim::Event::DEVICE {
                        ev.client = orig_indices[ev.client];
                    }
                    match &mut ev.kind {
                        mpshare_gpusim::EventKind::ClientFault { origin }
                        | mpshare_gpusim::EventKind::ServerCrash { origin } => {
                            *origin = orig_indices[*origin];
                        }
                        mpshare_gpusim::EventKind::ContextSwitch { to_client } => {
                            *to_client = orig_indices[*to_client];
                        }
                        _ => {}
                    }
                    merged.push(ev);
                }
            }
            merged.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("finite event times"));
            let mut log = mpshare_gpusim::EventLog::new();
            for ev in merged {
                log.record(ev.at, ev.client, ev.kind);
            }
            log
        } else {
            mpshare_gpusim::EventLog::default()
        };

        let tasks_failed = sub_results.iter().map(|(_, r, _)| r.tasks_failed).sum();
        let wasted_progress = Seconds::new(
            sub_results
                .iter()
                .map(|(_, r, _)| r.wasted_progress.value())
                .sum(),
        );
        let wasted_energy = mpshare_types::Energy::from_joules(
            sub_results
                .iter()
                .map(|(_, r, _)| r.wasted_energy.joules())
                .sum(),
        );

        let mut result = RunResult {
            telemetry,
            clients,
            makespan,
            total_energy,
            tasks_completed,
            failures,
            tasks_failed,
            wasted_progress,
            wasted_energy,
            events,
            completion_order: Vec::new(),
        };
        result.index_completions();
        Ok(result)
    }
}

/// Merges parallel per-instance telemetries into one board-level timeline.
///
/// Utilizations are weighted by each instance's share of the parent's SMs
/// (for SM util) and bandwidth (for BW util); powers are summed. An
/// instance contributes its idle power after its own timeline ends, and
/// `uncovered_idle_watts` (unused slices) is added throughout.
fn merge_parallel_telemetries(
    parent: &DeviceSpec,
    parts: &[(&RunResult, &DeviceSpec)],
    horizon: Seconds,
    uncovered_idle_watts: f64,
) -> Telemetry {
    let mut boundaries: Vec<f64> = vec![0.0, horizon.value()];
    for (r, _) in parts {
        for s in r.telemetry.segments() {
            boundaries.push(s.start.value());
            boundaries.push(s.end.value());
        }
    }
    boundaries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    boundaries.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut merged = Telemetry::new();
    // Per-part sweep cursor over its segments.
    let mut cursors = vec![0usize; parts.len()];
    for w in boundaries.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 - t0 <= 1e-12 || t0 >= horizon.value() {
            continue;
        }
        let mid = 0.5 * (t0 + t1);
        let mut sm = 0.0;
        let mut bw = 0.0;
        let mut power = uncovered_idle_watts;
        let mut capped = false;
        let mut active = 0usize;
        for (pi, (r, dev)) in parts.iter().enumerate() {
            let segs = r.telemetry.segments();
            while cursors[pi] < segs.len() && segs[cursors[pi]].end.value() <= mid {
                cursors[pi] += 1;
            }
            let sm_weight = dev.num_sms as f64 / parent.num_sms as f64;
            let bw_weight =
                dev.memory_bandwidth_bytes_per_sec / parent.memory_bandwidth_bytes_per_sec;
            match segs.get(cursors[pi]) {
                Some(s) if s.start.value() <= mid => {
                    sm += s.sm_util * sm_weight;
                    bw += s.bw_util * bw_weight;
                    power += s.power.watts();
                    capped |= s.capped;
                    active += s.active_clients;
                }
                _ => {
                    // Instance idle (finished or not yet started).
                    power += dev.idle_power.watts();
                }
            }
        }
        merged.record(Segment {
            start: Seconds::new(t0),
            end: Seconds::new(t1),
            sm_util: sm.min(1.0),
            bw_util: bw.min(1.0),
            power: Power::from_watts(power),
            clock_factor: 1.0,
            capped,
            active_clients: active,
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mig::MigProfile;
    use mpshare_gpusim::{KernelSpec, LaunchConfig, TaskProgram};
    use mpshare_types::{MemBytes, TaskId};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100x()
    }

    fn program(label: &str, id: u64, dur: f64, sm: f64) -> ClientProgram {
        let kernel = KernelSpec::from_launch(
            &dev(),
            LaunchConfig::dense(216 * 64, 1024),
            Seconds::new(dur),
        )
        .with_sm_demand(Fraction::new(sm));
        let mut t = TaskProgram::new(TaskId::new(id), label, MemBytes::from_mib(256));
        t.push_kernel(kernel);
        let mut c = ClientProgram::new(label);
        c.push_task(t);
        c
    }

    #[test]
    fn sequential_and_mps_agree_with_engine_semantics() {
        let runner = GpuRunner::new(dev());
        let seq = runner
            .run(
                &GpuSharing::Sequential,
                vec![program("a", 0, 2.0, 0.3), program("b", 1, 2.0, 0.3)],
            )
            .unwrap();
        assert!((seq.makespan.value() - 4.0).abs() < 1e-9);

        let mps = runner
            .run(
                &GpuSharing::mps_default(2),
                vec![program("a", 0, 2.0, 0.3), program("b", 1, 2.0, 0.3)],
            )
            .unwrap();
        assert!((mps.makespan.value() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn timesliced_runs_through_config() {
        let runner = GpuRunner::new(dev());
        let r = runner
            .run(
                &GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
                vec![program("a", 0, 0.5, 0.3), program("b", 1, 0.5, 0.3)],
            )
            .unwrap();
        // GPU work serializes: makespan ≈ 1.0 plus switch overheads.
        assert!(r.makespan.value() >= 1.0);
        assert!(r.makespan.value() < 1.2, "makespan {}", r.makespan);
    }

    #[test]
    fn streams_run_concurrently_without_client_pressure() {
        let runner = GpuRunner::new(dev());
        let r = runner
            .run(
                &GpuSharing::Streams,
                vec![program("a", 0, 2.0, 0.3), program("b", 1, 2.0, 0.3)],
            )
            .unwrap();
        assert!((r.makespan.value() - 2.0).abs() < 1e-6);
        assert_eq!(r.tasks_completed, 2);
    }

    #[test]
    fn mig_isolates_instances() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        // Two kernels that would contend heavily under MPS run isolated
        // under MIG (each slowed only by its smaller instance).
        let r = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0, 1],
                },
                vec![program("a", 0, 2.0, 0.9), program("b", 1, 2.0, 0.9)],
            )
            .unwrap();
        assert_eq!(r.tasks_completed, 2);
        // Each instance is slower than the full device but both run in
        // parallel; makespan is bounded by the smaller instance's slowdown.
        assert!(r.makespan.value() > 2.0);
        assert!(r.makespan.value() < 8.0);
    }

    #[test]
    fn mig_board_power_includes_idle_instances() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::OneSlice, MigProfile::FourSlice]).unwrap();
        // Only instance 0 gets work; instance 1 and the 2 unused slices
        // must still draw idle power.
        let r = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0],
                },
                vec![program("a", 0, 1.0, 0.5)],
            )
            .unwrap();
        // Board power strictly above the busy slice's own draw.
        let one_slice_idle = dev().idle_power.watts() / 7.0;
        assert!(r.telemetry.avg_power().watts() > one_slice_idle + 10.0);
        // And at least the full board idle power.
        assert!(r.telemetry.avg_power().watts() >= dev().idle_power.watts() - 1.0);
    }

    #[test]
    fn mig_rejects_bad_assignments() {
        let runner = GpuRunner::new(dev());
        let layout = MigLayout::new(&dev(), &[MigProfile::SevenSlice]).unwrap();
        let err = runner
            .run(
                &GpuSharing::Mig {
                    layout: layout.clone(),
                    assignment: vec![1],
                },
                vec![program("a", 0, 1.0, 0.5)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
        let err = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0, 0],
                },
                vec![program("a", 0, 1.0, 0.5)],
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn mig_preserves_client_order() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::ThreeSlice]).unwrap();
        let r = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![1, 0, 1],
                },
                vec![
                    program("first", 0, 0.5, 0.2),
                    program("second", 1, 0.5, 0.2),
                    program("third", 2, 0.5, 0.2),
                ],
            )
            .unwrap();
        let labels: Vec<&str> = r.clients.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["first", "second", "third"]);
    }

    /// Regression for the at-only completion sort: merged MIG results keep
    /// instance-local `client` ids in their completion records, so exact
    /// cross-instance completion-time ties must be broken by the canonical
    /// `(at, client, task)` key — never by the order the merge flattened
    /// the instances in.
    #[test]
    fn mig_merged_equal_time_ties_sort_canonically() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::ThreeSlice]).unwrap();
        // Identical programs on identical isolated instances complete at
        // bit-identical times; task ids are chosen so the canonical order
        // (tied on `at` and on the instance-local client id 0) reverses
        // submission order.
        let r = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0, 1],
                },
                vec![program("a", 9, 0.5, 0.2), program("b", 2, 0.5, 0.2)],
            )
            .unwrap();
        assert_eq!(r.tasks_completed, 2);
        let completions: Vec<_> = r.completions().into_iter().cloned().collect();
        assert_eq!(
            completions[0].at, completions[1].at,
            "expected an exact cross-instance completion tie"
        );
        assert!(
            completions.iter().all(|c| c.client == 0),
            "merged records keep instance-local client ids"
        );
        // Tie broken by task id: task 2 ("b") before task 9 ("a"), even
        // though the merge flattens instance 0 ("a") first — an at-only
        // stable sort would have kept flatten order.
        assert_eq!(completions[0].label, "b");
        assert_eq!(completions[1].label, "a");
        // The precomputed index and the merge-sort fallback agree.
        let mut fallback = r.clone();
        fallback.completion_order.clear();
        let slow: Vec<_> = fallback.completions().into_iter().cloned().collect();
        assert_eq!(completions, slow);
    }

    #[test]
    fn mig_slices_run_calibrated_kernels_proportionally_slower() {
        // A kernel calibrated on the full A100X must not run at full
        // speed on a 3/7th slice: its reference device is the whole GPU.
        let runner = GpuRunner::new(dev());
        let layout = MigLayout::new(&dev(), &[MigProfile::ThreeSlice]).unwrap();
        let slice_sms = layout.instances()[0].device.num_sms;
        let solo = runner
            .run(
                &GpuSharing::mps_default(1),
                vec![program("a", 0, 10.0, 0.9)],
            )
            .unwrap();
        let sliced = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0],
                },
                vec![program("a", 0, 10.0, 0.9)],
            )
            .unwrap();
        let expected_slowdown = 108.0 / slice_sms as f64;
        let actual = sliced.makespan.value() / solo.makespan.value();
        assert!(
            (actual - expected_slowdown).abs() / expected_slowdown < 0.05,
            "slowdown {actual:.3} vs expected {expected_slowdown:.3}"
        );
    }

    #[test]
    fn failure_domains_match_mechanism_semantics() {
        assert_eq!(
            GpuSharing::mps_default(2).failure_domain(),
            FailureDomain::SharedServer
        );
        assert_eq!(
            GpuSharing::Streams.failure_domain(),
            FailureDomain::SharedProcess
        );
        assert_eq!(
            GpuSharing::Sequential.failure_domain(),
            FailureDomain::PerClient
        );
        assert_eq!(
            GpuSharing::TimeSliced(TimeSliceConfig::driver_default()).failure_domain(),
            FailureDomain::PerClient
        );
        let layout = MigLayout::new(&dev(), &[MigProfile::SevenSlice]).unwrap();
        assert_eq!(
            GpuSharing::Mig {
                layout,
                assignment: vec![0]
            }
            .failure_domain(),
            FailureDomain::PerInstance
        );
    }

    /// The tentpole's core contrast: the same client fault takes down all
    /// siblings under MPS (shared server), only the origin under time
    /// slicing, and only the origin's instance under MIG.
    #[test]
    fn same_fault_has_mechanism_dependent_blast_radius() {
        let runner = GpuRunner::new(dev());
        let programs = || {
            vec![
                program("a", 0, 4.0, 0.2),
                program("b", 1, 4.0, 0.2),
                program("c", 2, 4.0, 0.2),
            ]
        };
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(1.0), 0);

        let mps = runner
            .run_with_faults(&GpuSharing::mps_default(3), programs(), &faults)
            .unwrap();
        assert_eq!(mps.tasks_completed, 0, "MPS: server crash kills everyone");
        assert!(mps.clients.iter().all(|c| c.failed));
        assert_eq!(mps.failures[0].victims, 3);

        let ts = runner
            .run_with_faults(
                &GpuSharing::TimeSliced(TimeSliceConfig::driver_default()),
                programs(),
                &faults,
            )
            .unwrap();
        assert_eq!(ts.tasks_completed, 2, "TS: fault contained to origin");
        assert!(ts.clients[0].failed && !ts.clients[1].failed && !ts.clients[2].failed);
        assert_eq!(ts.failures[0].victims, 1);

        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        let mig = runner
            .run_with_faults(
                &GpuSharing::Mig {
                    layout,
                    // a and b share instance 0; c is isolated on 1.
                    assignment: vec![0, 0, 1],
                },
                programs(),
                &faults,
            )
            .unwrap();
        assert_eq!(mig.tasks_completed, 1, "MIG: instance 1 is isolated");
        assert!(mig.clients[0].failed, "origin dies");
        assert!(
            mig.clients[1].failed,
            "instance-mate dies with the shared server"
        );
        assert!(!mig.clients[2].failed, "other instance survives");
        assert_eq!(mig.failures.len(), 1);
        assert_eq!(
            mig.failures[0].origin, 0,
            "origin remapped to submission index"
        );
        assert_eq!(mig.failures[0].victims, 2);
        assert_eq!(mig.tasks_failed, 2);
        assert!(mig.wasted_progress.value() > 0.0);
    }

    #[test]
    fn empty_fault_plan_matches_plain_run() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        let sharing = GpuSharing::Mig {
            layout,
            assignment: vec![0, 1],
        };
        let programs = || vec![program("a", 0, 1.0, 0.5), program("b", 1, 2.0, 0.5)];
        let plain = runner.run(&sharing, programs()).unwrap();
        let faulted = runner
            .run_with_faults(&sharing, programs(), &FaultPlan::default())
            .unwrap();
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.total_energy, faulted.total_energy);
        assert_eq!(plain.clients, faulted.clients);
        assert!(faulted.failures.is_empty());
    }

    /// Regression (fuzz-found): `with_event_log` used to be silently
    /// ignored under MIG — instance engines never recorded, and the merged
    /// result hardcoded an empty log. The merged log must carry every
    /// instance's events with client indices remapped to submission order.
    #[test]
    fn mig_merges_instance_event_logs() {
        let runner = GpuRunner::new(dev()).with_event_log(true);
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        let mut faults = FaultPlan::new();
        faults.push_client_fault(Seconds::new(0.5), 1);
        let r = runner
            .run_with_faults(
                &GpuSharing::Mig {
                    layout,
                    // Client 1 is alone on instance 0; clients 0 and 2
                    // share instance 1.
                    assignment: vec![1, 0, 1],
                },
                vec![
                    program("a", 0, 1.0, 0.3),
                    program("b", 1, 2.0, 0.3),
                    program("c", 2, 1.0, 0.3),
                ],
                &faults,
            )
            .unwrap();
        assert!(!r.events.is_empty(), "merged MIG log must not be empty");
        // Every submitted client appears in the log under its original
        // index, and no instance-local index leaks through.
        for client in 0..3 {
            assert!(
                r.events.for_client(client).count() > 0,
                "client {client} missing from merged log"
            );
        }
        // The fault hit client 1; its ClientFault event must carry the
        // remapped origin.
        let fault_events: Vec<_> = r
            .events
            .events()
            .iter()
            .filter(|e| matches!(e.kind, mpshare_gpusim::EventKind::ClientFault { .. }))
            .collect();
        assert_eq!(fault_events.len(), 1);
        assert_eq!(fault_events[0].client, 1);
        assert!(
            matches!(
                fault_events[0].kind,
                mpshare_gpusim::EventKind::ClientFault { origin: 1 }
            ),
            "{:?}",
            fault_events[0].kind
        );
        // Time never rewinds in the merged log.
        let times: Vec<f64> = r.events.events().iter().map(|e| e.at.value()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // And the merged result still satisfies every engine invariant.
        assert_eq!(r.invariant_violations(Some(3)), Vec::<String>::new());
    }

    #[test]
    fn merged_telemetry_covers_makespan() {
        let runner = GpuRunner::new(dev());
        let layout =
            MigLayout::new(&dev(), &[MigProfile::ThreeSlice, MigProfile::FourSlice]).unwrap();
        let r = runner
            .run(
                &GpuSharing::Mig {
                    layout,
                    assignment: vec![0, 1],
                },
                vec![program("short", 0, 0.5, 0.5), program("long", 1, 3.0, 0.5)],
            )
            .unwrap();
        assert!((r.telemetry.total_time().value() - r.makespan.value()).abs() < 1e-6);
    }
}
