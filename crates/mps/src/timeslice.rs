//! Configuration for the default time-sliced GPU scheduler.
//!
//! When MPS is not running, processes share a GPU through the driver's
//! time-sliced scheduler: work from different processes never executes
//! concurrently; contexts are swapped in and out with a context-switch
//! overhead (paper §II-B). The quantum and switch cost here are the model's
//! two parameters.

use mpshare_gpusim::SharingMode;
use mpshare_types::{Error, Result, Seconds};
use serde::{Deserialize, Serialize};

/// Parameters of the time-sliced scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeSliceConfig {
    /// Scheduling quantum: how long one process keeps the GPU.
    pub quantum: Seconds,
    /// Context-switch cost: GPU drains and state swaps between quanta.
    pub switch_overhead: Seconds,
}

impl TimeSliceConfig {
    /// Representative driver defaults: 2 ms quantum, 100 µs switch.
    pub fn driver_default() -> Self {
        TimeSliceConfig {
            quantum: Seconds::from_millis(2.0),
            switch_overhead: Seconds::from_millis(0.1),
        }
    }

    pub fn new(quantum: Seconds, switch_overhead: Seconds) -> Result<Self> {
        if quantum.value() <= 0.0 {
            return Err(Error::InvalidConfig("quantum must be positive".into()));
        }
        if switch_overhead.value() >= quantum.value() {
            return Err(Error::InvalidConfig(
                "switch overhead must be smaller than the quantum".into(),
            ));
        }
        Ok(TimeSliceConfig {
            quantum,
            switch_overhead,
        })
    }

    /// Fraction of each quantum lost to context switching — the efficiency
    /// ceiling of time-sliced sharing.
    pub fn overhead_fraction(&self) -> f64 {
        self.switch_overhead.value() / (self.quantum.value() + self.switch_overhead.value())
    }

    /// Converts to the engine's sharing mode.
    pub fn to_sharing_mode(self) -> SharingMode {
        SharingMode::TimeSliced {
            quantum: self.quantum,
            switch_overhead: self.switch_overhead,
        }
    }
}

impl Default for TimeSliceConfig {
    fn default() -> Self {
        Self::driver_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TimeSliceConfig::driver_default();
        assert!(c.quantum.value() > 0.0);
        assert!(c.switch_overhead < c.quantum);
        assert!(c.overhead_fraction() < 0.1);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(TimeSliceConfig::new(Seconds::ZERO, Seconds::ZERO).is_err());
        assert!(
            TimeSliceConfig::new(Seconds::from_millis(1.0), Seconds::from_millis(2.0)).is_err()
        );
    }

    #[test]
    fn converts_to_engine_mode() {
        let c = TimeSliceConfig::driver_default();
        match c.to_sharing_mode() {
            SharingMode::TimeSliced {
                quantum,
                switch_overhead,
            } => {
                assert_eq!(quantum, c.quantum);
                assert_eq!(switch_overhead, c.switch_overhead);
            }
            other => panic!("wrong mode: {other:?}"),
        }
    }

    #[test]
    fn overhead_fraction_formula() {
        let c = TimeSliceConfig::new(Seconds::from_millis(9.0), Seconds::from_millis(1.0)).unwrap();
        assert!((c.overhead_fraction() - 0.1).abs() < 1e-12);
    }
}
