//! The MPS server: one per GPU, admits client runtimes.
//!
//! Mirrors the semantics of `nvidia-cuda-mps-server`: up to 48 concurrent
//! clients (post-Volta), each with an *active thread percentage* that
//! provisions a logical SM partition. Partitions may oversubscribe the
//! device (the sum may exceed 100 %) — MPS provides memory protection and
//! logical partitions, but no performance isolation for memory bandwidth,
//! caches, or scheduling hardware. Device memory is a hard resource: a
//! client whose allocation does not fit is refused, exactly like a failing
//! `cudaMalloc`.

use mpshare_gpusim::{ClientProgram, DeviceSpec, RunResult};
use mpshare_types::{ClientId, Error, Fraction, GpuId, MemBytes, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An MPS *active thread percentage*: the fraction of device threads (and
/// hence SMs) a client may use. Real MPS accepts an integer percentage in
/// `(0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActiveThreadPercentage(u8);

impl ActiveThreadPercentage {
    /// The MPS default: no restriction.
    pub const FULL: ActiveThreadPercentage = ActiveThreadPercentage(100);

    pub fn new(pct: u8) -> Result<Self> {
        if pct == 0 || pct > 100 {
            return Err(Error::InvalidConfig(format!(
                "active thread percentage must be in (0, 100], got {pct}"
            )));
        }
        Ok(ActiveThreadPercentage(pct))
    }

    pub fn value(self) -> u8 {
        self.0
    }

    pub fn fraction(self) -> Fraction {
        Fraction::new(self.0 as f64 / 100.0)
    }

    /// Rounds a fraction up to the nearest whole percent (provisioning
    /// granularity of `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`). Rejects
    /// non-finite values and fractions outside `(0, 1]` instead of
    /// silently clamping them into range.
    pub fn from_fraction_ceil(frac: Fraction) -> Result<Self> {
        let value = frac.value();
        if !value.is_finite() || value <= 0.0 || value > 1.0 {
            return Err(Error::InvalidConfig(format!(
                "active thread fraction must be finite and in (0, 1], got {value}"
            )));
        }
        let pct = (value * 100.0).ceil() as u8;
        ActiveThreadPercentage::new(pct)
    }
}

/// A connected client as the server sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientHandle {
    pub id: ClientId,
    pub partition: ActiveThreadPercentage,
    /// Device memory currently reserved by this client.
    pub memory: MemBytes,
    /// Process label for diagnostics.
    pub label: String,
}

/// The per-GPU MPS server.
#[derive(Debug, Clone)]
pub struct MpsServer {
    gpu: GpuId,
    device: DeviceSpec,
    /// Default partition applied to clients that do not request one
    /// (`CUDA_MPS_ACTIVE_THREAD_PERCENTAGE` on the server).
    default_partition: ActiveThreadPercentage,
    clients: BTreeMap<ClientId, ClientHandle>,
    next_client: u64,
    /// Whether a fatal client fault has taken the server down. A crashed
    /// server refuses new connections until [`MpsServer::restart`].
    crashed: bool,
}

impl MpsServer {
    pub fn new(gpu: GpuId, device: DeviceSpec) -> Self {
        MpsServer {
            gpu,
            device,
            default_partition: ActiveThreadPercentage::FULL,
            clients: BTreeMap::new(),
            next_client: 0,
            crashed: false,
        }
    }

    pub fn gpu(&self) -> GpuId {
        self.gpu
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Sets the server-wide default active thread percentage. Affects only
    /// clients connected afterwards, like the real environment variable.
    pub fn set_default_partition(&mut self, p: ActiveThreadPercentage) {
        self.default_partition = p;
    }

    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    pub fn clients(&self) -> impl Iterator<Item = &ClientHandle> {
        self.clients.values()
    }

    /// Free device memory (capacity minus all client reservations).
    pub fn free_memory(&self) -> MemBytes {
        let used: MemBytes = self.clients.values().map(|c| c.memory).sum();
        self.device.memory_capacity.saturating_sub(used)
    }

    /// Connects a new client with the server default partition.
    pub fn connect(&mut self, label: impl Into<String>, memory: MemBytes) -> Result<ClientId> {
        let partition = self.default_partition;
        self.connect_with_partition(label, memory, partition)
    }

    /// Connects a new client with an explicit partition. Enforces the
    /// client limit and memory capacity.
    pub fn connect_with_partition(
        &mut self,
        label: impl Into<String>,
        memory: MemBytes,
        partition: ActiveThreadPercentage,
    ) -> Result<ClientId> {
        if self.crashed {
            return Err(Error::InvalidState(format!(
                "MPS server on {} is down after a fatal client fault; restart it first",
                self.gpu
            )));
        }
        if self.clients.len() >= self.device.max_mps_clients {
            return Err(Error::ClientLimitExceeded {
                gpu: self.gpu,
                limit: self.device.max_mps_clients,
            });
        }
        let free = self.free_memory();
        if memory > free {
            return Err(Error::OutOfMemory {
                gpu: self.gpu,
                requested: memory,
                available: free,
            });
        }
        let id = ClientId::new(self.next_client);
        self.next_client += 1;
        self.clients.insert(
            id,
            ClientHandle {
                id,
                partition,
                memory,
                label: label.into(),
            },
        );
        Ok(id)
    }

    /// Disconnects a client, releasing its memory.
    pub fn disconnect(&mut self, id: ClientId) -> Result<ClientHandle> {
        self.clients.remove(&id).ok_or(Error::UnknownClient(id))
    }

    /// A fatal fault in client `id`. MPS provides no fault containment:
    /// the shared server goes down and **every** connected client dies
    /// with it. Returns the full victim list (the faulting client
    /// included), releasing all their memory. The server refuses further
    /// connections until [`MpsServer::restart`].
    pub fn client_fault(&mut self, id: ClientId) -> Result<Vec<ClientHandle>> {
        if !self.clients.contains_key(&id) {
            return Err(Error::UnknownClient(id));
        }
        self.crashed = true;
        let victims = std::mem::take(&mut self.clients);
        mpshare_obs::counter_add(mpshare_obs::names::SERVER_CRASHES, 1);
        let (gpu, n) = (self.gpu, victims.len());
        mpshare_obs::emit(
            mpshare_obs::Track::Daemon,
            "server.crash",
            None,
            None,
            || serde_json::json!({ "gpu": gpu.to_string(), "origin": id.to_string(), "victims": n }),
        );
        Ok(victims.into_values().collect())
    }

    /// Whether the server is down after a fatal client fault.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Brings a crashed server back up (the control daemon re-spawning
    /// `nvidia-cuda-mps-server`). Clients must reconnect.
    pub fn restart(&mut self) {
        self.crashed = false;
    }

    /// Grows or shrinks a client's memory reservation (models further
    /// `cudaMalloc`/`cudaFree` calls after connect).
    pub fn resize_memory(&mut self, id: ClientId, memory: MemBytes) -> Result<()> {
        if !self.clients.contains_key(&id) {
            return Err(Error::UnknownClient(id));
        }
        let others: MemBytes = self
            .clients
            .values()
            .filter(|c| c.id != id)
            .map(|c| c.memory)
            .sum();
        let available = self.device.memory_capacity.saturating_sub(others);
        if memory > available {
            // Report absolutes — the requested reservation and what the
            // device could give this client — matching
            // `connect_with_partition`'s error semantics.
            return Err(Error::OutOfMemory {
                gpu: self.gpu,
                requested: memory,
                available,
            });
        }
        self.clients.get_mut(&id).expect("checked above").memory = memory;
        Ok(())
    }

    /// Partition fractions of all connected clients, in client-id order —
    /// the vector handed to the execution engine's MPS mode.
    pub fn partition_vector(&self) -> Vec<Fraction> {
        self.clients
            .values()
            .map(|c| c.partition.fraction())
            .collect()
    }

    /// Sum of all partitions as a plain factor (may exceed 1.0:
    /// oversubscription is legal under MPS).
    pub fn total_provisioned(&self) -> f64 {
        self.clients
            .values()
            .map(|c| c.partition.fraction().value())
            .sum()
    }

    /// Executes one program per connected client (in client-id order)
    /// under the clients' partitions — the data-plane counterpart of the
    /// admission control above.
    ///
    /// Each program's peak memory must fit the owning client's
    /// reservation: admission promised that memory, and a program that
    /// exceeds it would be the real world's `cudaMalloc` failure.
    pub fn run(&self, programs: Vec<ClientProgram>) -> Result<RunResult> {
        if programs.len() != self.clients.len() {
            return Err(Error::InvalidConfig(format!(
                "{} programs for {} connected clients",
                programs.len(),
                self.clients.len()
            )));
        }
        for (client, program) in self.clients.values().zip(&programs) {
            if program.peak_memory() > client.memory {
                return Err(Error::OutOfMemory {
                    gpu: self.gpu,
                    requested: program.peak_memory(),
                    available: client.memory,
                });
            }
        }
        let runner = crate::runner::GpuRunner::new(self.device.clone());
        runner.run(
            &crate::runner::GpuSharing::Mps {
                partitions: self.partition_vector(),
            },
            programs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MpsServer {
        MpsServer::new(GpuId::new(0), DeviceSpec::a100x())
    }

    #[test]
    fn active_thread_percentage_validates_range() {
        assert!(ActiveThreadPercentage::new(0).is_err());
        assert!(ActiveThreadPercentage::new(101).is_err());
        assert_eq!(
            ActiveThreadPercentage::new(100).unwrap(),
            ActiveThreadPercentage::FULL
        );
        assert_eq!(ActiveThreadPercentage::new(37).unwrap().value(), 37);
    }

    #[test]
    fn from_fraction_rounds_up_to_whole_percent() {
        let p = ActiveThreadPercentage::from_fraction_ceil(Fraction::new(0.301)).unwrap();
        assert_eq!(p.value(), 31);
        let p = ActiveThreadPercentage::from_fraction_ceil(Fraction::new(0.0001)).unwrap();
        assert_eq!(p.value(), 1);
        let p = ActiveThreadPercentage::from_fraction_ceil(Fraction::ONE).unwrap();
        assert_eq!(p.value(), 100);
    }

    #[test]
    fn from_fraction_rejects_out_of_range_and_non_finite() {
        // Fraction's own constructor guards [0, 1], so zero is the
        // reachable out-of-range input; the guard still covers the rest
        // defensively.
        let err = ActiveThreadPercentage::from_fraction_ceil(Fraction::ZERO).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "got {err:?}");
        // Boundary values stay accepted.
        assert_eq!(
            ActiveThreadPercentage::from_fraction_ceil(Fraction::ONE)
                .unwrap()
                .value(),
            100
        );
        assert_eq!(
            ActiveThreadPercentage::from_fraction_ceil(Fraction::new(0.0001))
                .unwrap()
                .value(),
            1
        );
    }

    #[test]
    fn resize_memory_error_reports_absolute_request_and_availability() {
        let mut s = server();
        let a = s.connect("a", MemBytes::from_gib(10)).unwrap();
        let _b = s.connect("b", MemBytes::from_gib(40)).unwrap();
        // Capacity 80 GiB, b holds 40: a can have at most 40.
        let err = s.resize_memory(a, MemBytes::from_gib(41)).unwrap_err();
        match err {
            Error::OutOfMemory {
                requested,
                available,
                ..
            } => {
                assert_eq!(requested, MemBytes::from_gib(41));
                assert_eq!(available, MemBytes::from_gib(40));
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn client_fault_takes_down_server_and_all_siblings() {
        let mut s = server();
        let a = s.connect("a", MemBytes::from_gib(10)).unwrap();
        let _b = s.connect("b", MemBytes::from_gib(20)).unwrap();
        let victims = s.client_fault(a).unwrap();
        assert_eq!(victims.len(), 2, "siblings die with the server");
        assert!(s.is_crashed());
        assert_eq!(s.client_count(), 0);
        assert_eq!(s.free_memory(), s.device().memory_capacity);
        // A crashed server refuses connections until restarted.
        let err = s.connect("late", MemBytes::ZERO).unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)));
        s.restart();
        s.connect("after-restart", MemBytes::ZERO).unwrap();
    }

    #[test]
    fn client_fault_unknown_client_errors() {
        let mut s = server();
        assert_eq!(
            s.client_fault(ClientId::new(3)),
            Err(Error::UnknownClient(ClientId::new(3)))
        );
        assert!(!s.is_crashed());
    }

    #[test]
    fn connect_assigns_unique_ids_and_tracks_memory() {
        let mut s = server();
        let a = s.connect("a", MemBytes::from_gib(10)).unwrap();
        let b = s.connect("b", MemBytes::from_gib(20)).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.client_count(), 2);
        assert_eq!(s.free_memory(), MemBytes::from_gib(50));
    }

    #[test]
    fn client_limit_is_48() {
        let mut s = server();
        for i in 0..48 {
            s.connect(format!("c{i}"), MemBytes::from_mib(1)).unwrap();
        }
        let err = s
            .connect("one-too-many", MemBytes::from_mib(1))
            .unwrap_err();
        assert!(matches!(err, Error::ClientLimitExceeded { limit: 48, .. }));
    }

    #[test]
    fn memory_exhaustion_refuses_connection() {
        let mut s = server();
        s.connect("big", MemBytes::from_gib(70)).unwrap();
        let err = s.connect("too-big", MemBytes::from_gib(20)).unwrap_err();
        assert!(matches!(err, Error::OutOfMemory { .. }));
        // Disconnecting frees the space.
        let id = s.clients().next().unwrap().id;
        s.disconnect(id).unwrap();
        s.connect("now-fits", MemBytes::from_gib(20)).unwrap();
    }

    #[test]
    fn default_partition_applies_to_new_clients_only() {
        let mut s = server();
        let a = s.connect("a", MemBytes::ZERO).unwrap();
        s.set_default_partition(ActiveThreadPercentage::new(25).unwrap());
        let b = s.connect("b", MemBytes::ZERO).unwrap();
        let parts: Vec<u8> = s.clients().map(|c| c.partition.value()).collect();
        assert_eq!(parts, vec![100, 25]);
        let _ = (a, b);
    }

    #[test]
    fn partition_vector_matches_clients_in_order() {
        let mut s = server();
        s.connect_with_partition(
            "a",
            MemBytes::ZERO,
            ActiveThreadPercentage::new(10).unwrap(),
        )
        .unwrap();
        s.connect_with_partition(
            "b",
            MemBytes::ZERO,
            ActiveThreadPercentage::new(60).unwrap(),
        )
        .unwrap();
        let v = s.partition_vector();
        assert_eq!(v.len(), 2);
        assert!((v[0].value() - 0.10).abs() < 1e-12);
        assert!((v[1].value() - 0.60).abs() < 1e-12);
        assert!((s.total_provisioned() - 0.70).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_partitions_are_legal() {
        let mut s = server();
        for i in 0..3 {
            s.connect_with_partition(
                format!("c{i}"),
                MemBytes::ZERO,
                ActiveThreadPercentage::new(50).unwrap(),
            )
            .unwrap();
        }
        assert!((s.total_provisioned() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn resize_memory_respects_capacity() {
        let mut s = server();
        let a = s.connect("a", MemBytes::from_gib(10)).unwrap();
        let _b = s.connect("b", MemBytes::from_gib(40)).unwrap();
        s.resize_memory(a, MemBytes::from_gib(40)).unwrap();
        assert!(s.resize_memory(a, MemBytes::from_gib(41)).is_err());
        assert!(s.resize_memory(ClientId::new(99), MemBytes::ZERO).is_err());
    }

    #[test]
    fn server_runs_admitted_clients_under_their_partitions() {
        use mpshare_gpusim::{KernelSpec, LaunchConfig, TaskProgram};
        use mpshare_types::{Seconds, TaskId};

        let mut s = server();
        s.connect_with_partition(
            "a",
            MemBytes::from_gib(1),
            ActiveThreadPercentage::new(50).unwrap(),
        )
        .unwrap();
        s.connect_with_partition("b", MemBytes::from_gib(1), ActiveThreadPercentage::FULL)
            .unwrap();

        let program = |id: u64| {
            let d = DeviceSpec::a100x();
            let k =
                KernelSpec::from_launch(&d, LaunchConfig::dense(216 * 64, 1024), Seconds::new(1.0))
                    .with_sm_demand(Fraction::new(0.2));
            let mut t = TaskProgram::new(TaskId::new(id), "t", MemBytes::from_mib(512));
            t.push_kernel(k);
            let mut c = mpshare_gpusim::ClientProgram::new("c");
            c.push_task(t);
            c
        };
        let result = s.run(vec![program(0), program(1)]).unwrap();
        assert_eq!(result.tasks_completed, 2);
        // Client a at a 50% partition runs its linear kernel ~2x slower.
        assert!(result.clients[0].finished.value() > 1.9);
        assert!(result.clients[1].finished.value() < 1.1);
    }

    #[test]
    fn server_refuses_programs_exceeding_reservations() {
        use mpshare_gpusim::{KernelSpec, LaunchConfig, TaskProgram};
        use mpshare_types::{Seconds, TaskId};

        let mut s = server();
        s.connect("small", MemBytes::from_mib(256)).unwrap();
        let d = DeviceSpec::a100x();
        let k = KernelSpec::from_launch(&d, LaunchConfig::dense(216, 1024), Seconds::new(1.0));
        let mut t = TaskProgram::new(TaskId::new(0), "big", MemBytes::from_gib(2));
        t.push_kernel(k);
        let mut c = mpshare_gpusim::ClientProgram::new("c");
        c.push_task(t);
        let err = s.run(vec![c]).unwrap_err();
        assert!(matches!(err, Error::OutOfMemory { .. }));

        // Wrong program count is rejected too.
        assert!(s.run(vec![]).is_err());
    }

    #[test]
    fn disconnect_unknown_client_errors() {
        let mut s = server();
        assert_eq!(
            s.disconnect(ClientId::new(7)),
            Err(Error::UnknownClient(ClientId::new(7)))
        );
    }
}
