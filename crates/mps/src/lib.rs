//! `mpshare-mps` — models of NVIDIA's GPU sharing mechanisms.
//!
//! This crate reproduces the *control plane* of the sharing mechanisms the
//! paper evaluates (§II-B), on top of the `mpshare-gpusim` execution engine:
//!
//! * [`daemon`] / [`server`] — the CUDA MPS architecture: one control
//!   daemon per node, one server per GPU, one client runtime per process,
//!   with the post-Volta 48-client limit and per-client *active thread
//!   percentage* (SM partition) provisioning.
//! * [`timeslice`] — the default time-sliced scheduler used when MPS is
//!   not running.
//! * [`mig`] — Multi-Instance GPU: hardware partitioning into up to seven
//!   isolated instances, reconfigurable only while the GPU is idle.
//! * [`runner`] — a uniform "run these programs under this sharing
//!   mechanism" entry point used by the profiler, scheduler, and harness.

pub mod daemon;
pub mod mig;
pub mod runner;
pub mod server;
pub mod timeslice;

pub use daemon::{ControlDaemon, DaemonState};
pub use mig::{MigInstance, MigLayout, MigProfile};
pub use runner::{FailureDomain, GpuRunner, GpuSharing};
pub use server::{ActiveThreadPercentage, ClientHandle, MpsServer};
pub use timeslice::TimeSliceConfig;
