//! The MPS control daemon: node-level lifecycle management.
//!
//! Mirrors `nvidia-cuda-mps-control`: the daemon owns the set of GPUs on
//! the node and lazily spawns one [`MpsServer`] per GPU when the first
//! client for that GPU connects (the real daemon spawns the server on first
//! client contact too). `quit` shuts down all servers, refusing when
//! clients are still connected unless forced.

use crate::server::{ClientHandle, MpsServer};
use mpshare_gpusim::DeviceSpec;
use mpshare_types::{ClientId, Error, GpuId, Result};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// Daemon lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DaemonState {
    Stopped,
    Running,
}

/// The node-level control daemon.
#[derive(Debug)]
pub struct ControlDaemon {
    state: DaemonState,
    devices: BTreeMap<GpuId, DeviceSpec>,
    servers: BTreeMap<GpuId, MpsServer>,
}

impl ControlDaemon {
    /// Creates a stopped daemon managing the given GPUs.
    pub fn new(devices: impl IntoIterator<Item = (GpuId, DeviceSpec)>) -> Self {
        ControlDaemon {
            state: DaemonState::Stopped,
            devices: devices.into_iter().collect(),
            servers: BTreeMap::new(),
        }
    }

    /// Convenience: a node with `n` identical GPUs.
    pub fn homogeneous_node(n: usize, device: DeviceSpec) -> Self {
        Self::new((0..n as u64).map(|i| (GpuId::new(i), device.clone())))
    }

    pub fn state(&self) -> DaemonState {
        self.state
    }

    pub fn gpu_ids(&self) -> Vec<GpuId> {
        self.devices.keys().copied().collect()
    }

    /// Starts the daemon (idempotent).
    pub fn start(&mut self) {
        self.state = DaemonState::Running;
    }

    /// Returns the server for `gpu`, spawning it on first use. Errors when
    /// the daemon is stopped or the GPU does not exist.
    pub fn server(&mut self, gpu: GpuId) -> Result<&mut MpsServer> {
        if self.state != DaemonState::Running {
            return Err(Error::InvalidState(
                "MPS control daemon is not running".into(),
            ));
        }
        let device = self
            .devices
            .get(&gpu)
            .ok_or_else(|| Error::InvalidConfig(format!("no such GPU: {gpu}")))?
            .clone();
        Ok(match self.servers.entry(gpu) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                // First client contact: the daemon spawns the GPU's server
                // lazily, and the control plane records the spawn.
                mpshare_obs::counter_add(mpshare_obs::names::SERVER_SPAWNS, 1);
                mpshare_obs::emit(
                    mpshare_obs::Track::Daemon,
                    "daemon.server_spawn",
                    None,
                    None,
                    || serde_json::json!({ "gpu": gpu.to_string() }),
                );
                e.insert(MpsServer::new(gpu, device))
            }
        })
    }

    /// Whether a server has been spawned for `gpu`.
    pub fn has_server(&self, gpu: GpuId) -> bool {
        self.servers.contains_key(&gpu)
    }

    /// A fatal fault in client `client` on `gpu`: the shared server and
    /// every connected sibling go down (no MPS fault containment). The
    /// daemon reaps the dead server, so the next [`ControlDaemon::server`]
    /// call spawns a fresh one — the real daemon's restart-on-demand
    /// behaviour. Returns the victims.
    pub fn client_fault(&mut self, gpu: GpuId, client: ClientId) -> Result<Vec<ClientHandle>> {
        if self.state != DaemonState::Running {
            return Err(Error::InvalidState(
                "MPS control daemon is not running".into(),
            ));
        }
        let server = self
            .servers
            .get_mut(&gpu)
            .ok_or_else(|| Error::InvalidState(format!("no server running on {gpu}")))?;
        let victims = server.client_fault(client)?;
        self.servers.remove(&gpu);
        mpshare_obs::counter_add(mpshare_obs::names::SERVER_REAPS, 1);
        let n = victims.len();
        mpshare_obs::emit(
            mpshare_obs::Track::Daemon,
            "daemon.server_reap",
            None,
            None,
            || serde_json::json!({ "gpu": gpu.to_string(), "victims": n }),
        );
        Ok(victims)
    }

    /// Total clients across all servers.
    pub fn total_clients(&self) -> usize {
        self.servers.values().map(|s| s.client_count()).sum()
    }

    /// Stops the daemon and tears down all servers. Refuses when clients
    /// are still connected unless `force` is set (like `quit` vs the
    /// daemon's forced shutdown).
    pub fn quit(&mut self, force: bool) -> Result<()> {
        if !force && self.total_clients() > 0 {
            return Err(Error::InvalidState(format!(
                "{} clients still connected; use force to terminate",
                self.total_clients()
            )));
        }
        mpshare_obs::counter_add(mpshare_obs::names::SERVER_REAPS, self.servers.len() as u64);
        self.servers.clear();
        self.state = DaemonState::Stopped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpshare_types::MemBytes;

    fn daemon() -> ControlDaemon {
        ControlDaemon::homogeneous_node(2, DeviceSpec::a100x())
    }

    #[test]
    fn starts_stopped_and_refuses_servers() {
        let mut d = daemon();
        assert_eq!(d.state(), DaemonState::Stopped);
        assert!(d.server(GpuId::new(0)).is_err());
    }

    #[test]
    fn spawns_servers_lazily_per_gpu() {
        let mut d = daemon();
        d.start();
        assert!(!d.has_server(GpuId::new(0)));
        d.server(GpuId::new(0)).unwrap();
        assert!(d.has_server(GpuId::new(0)));
        assert!(!d.has_server(GpuId::new(1)));
    }

    #[test]
    fn unknown_gpu_is_an_error() {
        let mut d = daemon();
        d.start();
        assert!(d.server(GpuId::new(5)).is_err());
    }

    #[test]
    fn quit_refuses_with_connected_clients_unless_forced() {
        let mut d = daemon();
        d.start();
        d.server(GpuId::new(0))
            .unwrap()
            .connect("c", MemBytes::from_mib(1))
            .unwrap();
        assert!(d.quit(false).is_err());
        assert_eq!(d.state(), DaemonState::Running);
        d.quit(true).unwrap();
        assert_eq!(d.state(), DaemonState::Stopped);
        assert_eq!(d.total_clients(), 0);
    }

    #[test]
    fn quit_succeeds_when_idle() {
        let mut d = daemon();
        d.start();
        d.server(GpuId::new(0)).unwrap();
        d.quit(false).unwrap();
        assert_eq!(d.state(), DaemonState::Stopped);
    }

    #[test]
    fn client_fault_reaps_server_and_respawns_on_demand() {
        use mpshare_types::ClientId;
        let mut d = daemon();
        d.start();
        let a = d
            .server(GpuId::new(0))
            .unwrap()
            .connect("a", MemBytes::from_gib(1))
            .unwrap();
        d.server(GpuId::new(0))
            .unwrap()
            .connect("b", MemBytes::from_gib(2))
            .unwrap();
        // A fatal fault in a kills the server and both clients.
        let victims = d.client_fault(GpuId::new(0), a).unwrap();
        assert_eq!(victims.len(), 2);
        assert!(!d.has_server(GpuId::new(0)));
        assert_eq!(d.total_clients(), 0);
        // Next use spawns a fresh, working server.
        let s = d.server(GpuId::new(0)).unwrap();
        assert!(!s.is_crashed());
        s.connect("after", MemBytes::ZERO).unwrap();
        // Faulting an unknown client or GPU errors cleanly.
        assert!(d.client_fault(GpuId::new(0), ClientId::new(99)).is_err());
        assert!(d.client_fault(GpuId::new(1), ClientId::new(0)).is_err());
    }

    #[test]
    fn total_clients_sums_across_gpus() {
        let mut d = daemon();
        d.start();
        d.server(GpuId::new(0))
            .unwrap()
            .connect("a", MemBytes::ZERO)
            .unwrap();
        d.server(GpuId::new(1))
            .unwrap()
            .connect("b", MemBytes::ZERO)
            .unwrap();
        d.server(GpuId::new(1))
            .unwrap()
            .connect("c", MemBytes::ZERO)
            .unwrap();
        assert_eq!(d.total_clients(), 3);
    }
}
